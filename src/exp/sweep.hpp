#pragma once
// Declarative experiment sweeps.
//
// A SweepSpec names a cross-product of experiment axes — graph workload
// specs × agent counts k × placement specs × ASYNC schedulers × algorithms
// — plus a list of replicate seeds.  The graph and placement axes are
// *spec strings* (graph/spec.hpp, algo/placement.hpp): legacy family names
// ("er") and cluster counts stay valid as aliases, and any parseable
// workload — parameterized generators, `file:PATH` graphs, adversarial
// placements — drops into the same cross-product.  Each point of the
// cross-product is a *cell*; each cell is simulated once per seed (the
// seed drives graph construction, placement and the run itself, exactly
// like the historical bench_common::runCase single-seed path).
// BatchRunner (batch_runner.hpp) executes a spec over a thread pool,
// sharing each immutable Graph across every run with an equal
// GraphSpec::instanceKey, and aggregates replicates per cell.
//
// Scale knob: DISP_BENCH_SCALE ∈ {0.5, 1, 2, 4} scales kSweep() the same
// way it always scaled the hand-rolled bench loops.

#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <functional>
#include <stdexcept>
#include <string>
#include <vector>

#include "algo/runner.hpp"
#include "graph/spec.hpp"
#include "util/stats.hpp"

namespace disp::exp {

/// DISP_BENCH_SCALE as a validated positive factor (1.0 when unset).
/// Throws std::invalid_argument on a malformed or non-positive value — a
/// silent atof-style 0.0 would collapse every kSweep to the minimum.
[[nodiscard]] inline double scale() {
  const char* s = std::getenv("DISP_BENCH_SCALE");
  if (s == nullptr || *s == '\0') return 1.0;
  char* end = nullptr;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || !std::isfinite(v) || v <= 0.0) {
    throw std::invalid_argument("DISP_BENCH_SCALE='" + std::string(s) +
                                "' is not a positive number");
  }
  return v;
}

/// k values 2^lo .. 2^hi scaled by DISP_BENCH_SCALE (minimum 8).
[[nodiscard]] std::vector<std::uint32_t> kSweep(std::uint32_t lo = 5,
                                                std::uint32_t hi = 9);

/// Legacy placement alias: the historical cluster-count knob as a
/// PlacementSpec string (1 = "rooted", ℓ > 1 = "clusters:l=ℓ").
[[nodiscard]] std::string clustersPlacement(std::uint32_t clusters);

/// One simulation point: every input runSession needs, from one seed.
struct CaseSpec {
  std::string graph = "er";  ///< GraphSpec string (graph/spec.hpp)
  std::uint32_t k = 0;
  std::string algorithm = "rooted_sync";  ///< registry key (algo/registry.hpp)
  std::string placement = "rooted";  ///< PlacementSpec string (algo/placement.hpp)
  std::string scheduler = "round_robin";
  std::uint64_t seed = 17;  ///< drives graph, placement and run
  double nOverK = 2.0;  ///< default sizing n = k * nOverK for size-unbound specs
  PortLabeling labeling = PortLabeling::RandomPermutation;
  std::uint64_t limit = 0;  ///< round/activation cap; 0 = auto (RunOptions)
  /// Intra-run worker lanes (RunOptions::runThreads): 1 = serial, 0 =
  /// hardware.  SYNC only; facts are lane-count invariant.
  unsigned runThreads = 1;
  /// Fault load (FaultSpec string, core/faults.hpp; "none" = fault-free).
  std::string faults = "none";
  /// Observer plumbing: when set, invoked on the run's RunOptions right
  /// before runSession, to attach onEvent/onRound/... hooks (BatchRunner
  /// binds its BatchOptions::observe hook here per replicate).
  std::function<void(RunOptions&)> observe{};
};

/// Outcome of one simulated case plus the graph's vital statistics.
struct RunRecord {
  RunResult run;
  std::uint32_t n = 0;
  std::uint32_t maxDegree = 0;
  std::uint64_t edges = 0;
  /// Non-empty when the run threw (limit hit — protocol bug or too-small
  /// cap).  BatchRunner records the error instead of aborting the sweep;
  /// errored replicates count as undispersed and are excluded from `time`.
  std::string error;
};

/// Builds the case's graph and placement and runs it once.
[[nodiscard]] RunRecord runCell(const CaseSpec& c);

/// Same, against a prebuilt graph (must equal the case's GraphSpec
/// instance for its k/nOverK/seed/labeling — BatchRunner uses this to
/// share graphs).
[[nodiscard]] RunRecord runCell(const Graph& g, const CaseSpec& c);

/// The cross-product of experiment axes.  Every vector axis must be
/// non-empty; `seeds` are the replicates aggregated per cell.
struct SweepSpec {
  std::string name;  ///< registry / JSONL identifier
  std::vector<std::string> graphs;  ///< GraphSpec strings
  std::vector<std::uint32_t> ks;
  std::vector<std::string> algorithms;  ///< registry keys
  std::vector<std::string> placements{"rooted"};  ///< PlacementSpec strings
  std::vector<std::string> schedulers{"round_robin"};
  /// Fault-load axis (FaultSpec strings, core/faults.hpp).  Defaults to the
  /// single fault-free load, so existing sweeps are unchanged.
  std::vector<std::string> faults{"none"};
  std::vector<std::uint64_t> seeds{17};
  double nOverK = 2.0;
  PortLabeling labeling = PortLabeling::RandomPermutation;
  std::uint64_t limit = 0;  ///< per-run round/activation cap; 0 = auto
  /// Multiplies the k axis at enumeration time (each k clamped to >= 8,
  /// duplicates dropped).  1.0 = run `ks` as written.  Sweeps whose ks are
  /// spelled out literally (e.g. table1_scale's 2^10..2^14) set this from
  /// scale() so DISP_BENCH_SCALE still shrinks or grows them; sweeps built
  /// via kSweep() already folded the env scale into `ks` and keep 1.0.
  double scale = 1.0;

  /// The k axis after applying `scale`.
  [[nodiscard]] std::vector<std::uint32_t> scaledKs() const;

  [[nodiscard]] std::size_t cellCount() const {
    return graphs.size() * scaledKs().size() * algorithms.size() *
           placements.size() * schedulers.size() * faults.size();
  }
};

/// Coordinates of one cell inside a sweep (the seed axis is aggregated).
/// enumerateCells stores the canonical spec strings; SweepResult::at
/// canonicalizes its probe, so lookups may use any equivalent spelling.
struct CellKey {
  std::string graph;
  std::uint32_t k = 0;
  std::string placement = "rooted";
  std::string scheduler = "round_robin";
  std::string algorithm = "rooted_sync";  ///< registry key
  /// FaultSpec string; last so historical five-field brace inits stay valid.
  std::string faults = "none";

  [[nodiscard]] bool operator==(const CellKey&) const = default;
  [[nodiscard]] std::string describe() const;
};

/// One aggregated cell: replicate runs (index-parallel with spec.seeds)
/// plus summary statistics over the time metric.  A cell outside this
/// process's shard (BatchOptions::shardIndex/shardCount) keeps its key but
/// has no replicates: ran() == false.
struct Cell {
  CellKey key;
  std::vector<RunRecord> replicates;
  Summary time;  ///< rounds (SYNC) / epochs (ASYNC) over non-errored replicates
  /// Process peak RSS (MiB) sampled when the cell's last replicate landed,
  /// with the kernel watermark reset before its first.  0 unless requested
  /// (BatchOptions::resetPeakRss) and attributable (serial cells).
  double peakRssMb = 0.0;

  /// False for cells skipped by sharding (no replicates executed here).
  [[nodiscard]] bool ran() const { return !replicates.empty(); }
  [[nodiscard]] const RunRecord& first() const {
    DISP_CHECK(!replicates.empty(), "cell " + key.describe() + " did not run");
    return replicates.front();
  }
  [[nodiscard]] bool allDispersed() const;
  /// Mean time over replicates (the single value for single-seed sweeps).
  [[nodiscard]] double meanTime() const { return time.mean; }
  /// Memory high-water mark across replicates (the claim is a worst case).
  [[nodiscard]] std::uint64_t maxMemoryBits() const;
};

/// Result of executing a SweepSpec: cells in deterministic enumeration
/// order (graph ▸ k ▸ placement ▸ scheduler ▸ algorithm ▸ faults, each axis
/// in spec order) — independent of thread count.
struct SweepResult {
  SweepSpec spec;
  std::vector<Cell> cells;

  /// Cell lookup (spec strings canonicalized first); throws
  /// std::out_of_range naming the missing key.
  [[nodiscard]] const Cell& at(const CellKey& key) const;
};

/// Enumerates the cell keys of a spec in canonical order, validating every
/// axis (graph/placement specs parsed, algorithm keys resolved).
[[nodiscard]] std::vector<CellKey> enumerateCells(const SweepSpec& spec);

/// 95% confidence-interval half-width of the mean (normal approximation);
/// 0 for fewer than two samples.
[[nodiscard]] double ci95(const Summary& s);

/// The "fit[label]: ..." growth-diagnosis line benches print under each
/// table (Table-1 model check: exponent of time ~ k^p plus flat-ratio
/// columns).
[[nodiscard]] std::string growthDiagnosisLine(const std::string& label,
                                              const std::vector<double>& ks,
                                              const std::vector<double>& times);

}  // namespace disp::exp
