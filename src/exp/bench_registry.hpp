#pragma once
// Named registry of experiment suites + the shared bench main.
//
// Every former bench binary is one registered suite; `disp_bench` selects
// suites by name and the per-suite binaries are one-line wrappers:
//
//   int main(int argc, char** argv) {
//     return disp::exp::benchMain("table1_sync_rooted", argc, argv);
//   }
//
// Common flags (parsed by benchMain / runBenches):
//   --threads=N      worker threads (0 = hardware concurrency, the default)
//   --run-threads=N  intra-run worker lanes for SYNC rounds (1 = serial,
//                    the default; 0 = hardware concurrency).  Facts are
//                    lane-count invariant (DESIGN.md §9).  Requires
//                    --threads=1: the two parallelism axes multiply
//                    (runBenches rejects nested parallelism)
//   --seeds=a,b,c    replicate seeds overriding each suite's single
//                    historical seed; time cells become per-cell means and
//                    tables gain per-cell "±95" CI columns
//   --jsonl=PATH     mirror every table row / fit line as JSON-lines
//   --trace=PATH     stream every run's typed trace events + sampled
//                    snapshots as JSON-lines (schema in exp/sink.hpp,
//                    validated by scripts/check_trace.sh)
//   --trajectory=PATH  plotting-friendly settled/moves CSV time series
//                    (one row per sampled snapshot; exclusive with --trace)
//   --sample=N       snapshot cadence for --trace/--trajectory (default 1
//                    = every round/activation)
//   --graphs=S;S     override a suite's graph axis with ';'-separated
//                    GraphSpec strings (graph/spec.hpp grammar, e.g.
//                    'grid:rows=64,cols=64;file:roads.e')
//   --placements=S;S override the placement axis with ';'-separated
//                    PlacementSpec strings ('rooted;adversarial:far')
//   --ks=a,b,c       override the k axis (suites that take it)
//   --shard=I/N      run only cells with index ≡ I (mod N) of each suite's
//                    deterministic enumeration; merge the JSONL shard
//                    outputs with scripts/merge_jsonl.sh (or let the
//                    disp_fleet coordinator drive shards + merge for you).
//                    Canonical form only: decimal I and N, no leading
//                    zeros, 0 <= I < N <= 4096.  A shard owning zero cells
//                    exits with kEmptyShardExitCode so a coordinator can
//                    tell "empty" from "crashed"
//   --stream-cells   with --jsonl: mirror every finished cell as one
//                    {"table": "cell", ...} row the moment its replicates
//                    land, so a killed run keeps its completed cells
//                    durable (suites with their own cell streams —
//                    table1_scale, scale_real — keep their richer rows)
//   --list-cells     print each selected suite's cell enumeration as JSON
//                    lines (respecting --shard and the axis overrides) and
//                    exit without simulating anything

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "exp/sink.hpp"
#include "util/cli.hpp"

namespace disp::exp {

struct BenchDef {
  const char* name;
  const char* summary;
  void (*fn)(BenchContext&);
  /// Excluded from `disp_bench all`: must be named explicitly (multi-GB /
  /// multi-minute campaigns like scale_real).
  bool heavy = false;
  /// True when every cell the suite runs goes through BatchRunner's
  /// canonical enumeration, so --shard partitions it disjointly and
  /// --list-cells can enumerate it without simulating.  Hand-rolled loops
  /// (the fig suites, wallclock, scaling) are not shardable: every shard
  /// would rerun them whole, and runBenches rejects the combination.
  bool shardable = true;
};

[[nodiscard]] const std::vector<BenchDef>& benchRegistry();
[[nodiscard]] const BenchDef* findBench(const std::string& name);

/// Exit code for a run whose --shard owns zero cells of every selected
/// suite (a high shard index against a small enumeration): the JSONL file
/// is validly empty, which a coordinator must not confuse with a crash.
inline constexpr int kEmptyShardExitCode = 3;

/// Strict --shard=I/N parse: "I/N" with decimal digits only, no leading
/// zeros ("0" itself is fine), I < N <= 4096.  Returns {index, count};
/// throws std::invalid_argument naming --shard on any other form
/// ("01/4", "1/4/2", "1/", "I/0", spaces, signs).
[[nodiscard]] std::pair<unsigned, unsigned> parseShardFlag(const std::string& value);

/// One cell of a suite's canonical enumeration (listBenchCells /
/// disp_bench --list-cells).
struct ListedCell {
  std::string sweep;        ///< registry name
  std::size_t invocation;   ///< which BatchRunner::run call within the sweep
  std::size_t index;        ///< canonical cell index within that invocation
  CellKey key;
};

/// Enumerates every cell the named suites would run — axis overrides from
/// `cli` applied, nothing simulated, markdown discarded.  Returns ALL
/// cells (shard ownership of cell `index` under I/N is index % N == I;
/// any --shard flag in `cli` is ignored here so coordinators see the full
/// enumeration).  Throws std::invalid_argument on unknown or
/// non-shardable suites and on malformed override flags.
[[nodiscard]] std::vector<ListedCell> listBenchCells(
    const std::vector<std::string>& names, const Cli& cli);

/// Runs the named suites with options from `cli`; returns a process exit
/// code (diagnostics on stderr).
[[nodiscard]] int runBenches(const std::vector<std::string>& names, const Cli& cli);

/// Entry point for the thin per-suite binaries.
[[nodiscard]] int benchMain(const std::string& name, int argc,
                            const char* const* argv);

}  // namespace disp::exp
