#pragma once
// Named registry of experiment suites + the shared bench main.
//
// Every former bench binary is one registered suite; `disp_bench` selects
// suites by name and the per-suite binaries are one-line wrappers:
//
//   int main(int argc, char** argv) {
//     return disp::exp::benchMain("table1_sync_rooted", argc, argv);
//   }
//
// Common flags (parsed by benchMain / runBenches):
//   --threads=N      worker threads (0 = hardware concurrency, the default)
//   --run-threads=N  intra-run worker lanes for SYNC rounds (1 = serial,
//                    the default; 0 = hardware concurrency).  Facts are
//                    lane-count invariant (DESIGN.md §9).  Requires
//                    --threads=1: the two parallelism axes multiply
//                    (runBenches rejects nested parallelism)
//   --seeds=a,b,c    replicate seeds overriding each suite's single
//                    historical seed; time cells become per-cell means and
//                    tables gain per-cell "±95" CI columns
//   --jsonl=PATH     mirror every table row / fit line as JSON-lines
//   --trace=PATH     stream every run's typed trace events + sampled
//                    snapshots as JSON-lines (schema in exp/sink.hpp,
//                    validated by scripts/check_trace.sh)
//   --trajectory=PATH  plotting-friendly settled/moves CSV time series
//                    (one row per sampled snapshot; exclusive with --trace)
//   --sample=N       snapshot cadence for --trace/--trajectory (default 1
//                    = every round/activation)
//   --graphs=S;S     override a suite's graph axis with ';'-separated
//                    GraphSpec strings (graph/spec.hpp grammar, e.g.
//                    'grid:rows=64,cols=64;file:roads.e')
//   --placements=S;S override the placement axis with ';'-separated
//                    PlacementSpec strings ('rooted;adversarial:far')
//   --ks=a,b,c       override the k axis (suites that take it)
//   --shard=I/N      run only cells with index ≡ I (mod N) of each suite's
//                    deterministic enumeration; merge the JSONL shard
//                    outputs with scripts/merge_jsonl.sh

#include <string>
#include <vector>

#include "exp/sink.hpp"
#include "util/cli.hpp"

namespace disp::exp {

struct BenchDef {
  const char* name;
  const char* summary;
  void (*fn)(BenchContext&);
  /// Excluded from `disp_bench all`: must be named explicitly (multi-GB /
  /// multi-minute campaigns like scale_real).
  bool heavy = false;
};

[[nodiscard]] const std::vector<BenchDef>& benchRegistry();
[[nodiscard]] const BenchDef* findBench(const std::string& name);

/// Runs the named suites with options from `cli`; returns a process exit
/// code (diagnostics on stderr).
[[nodiscard]] int runBenches(const std::vector<std::string>& names, const Cli& cli);

/// Entry point for the thin per-suite binaries.
[[nodiscard]] int benchMain(const std::string& name, int argc,
                            const char* const* argv);

}  // namespace disp::exp
