#pragma once
// The named experiment suites (the former hand-rolled bench binaries, the
// large-k scale sweep and the ad-hoc scenario driver), each a declarative
// body over the sweep/batch/sink subsystem.
// Registered by name in bench_registry.cpp; the bench/*.cpp binaries are
// thin one-line mains over benchMain().

#include "exp/sink.hpp"

namespace disp::exp {

// Table 1 scaling rows (benches_table1.cpp).
void benchTable1SyncRooted(BenchContext& ctx);    // E1
void benchTable1AsyncRooted(BenchContext& ctx);   // E2
void benchTable1SyncGeneral(BenchContext& ctx);   // E3
void benchTable1AsyncGeneral(BenchContext& ctx);  // E4
void benchTable1Memory(BenchContext& ctx);        // E5

// Large-k scale sweep, streams cells to JSONL (benches_scale.cpp).
void benchTable1Scale(BenchContext& ctx);         // E15

// Single-run wallclock vs --run-threads lanes on the largest table1_scale
// cell; enforces lane-count fact invariance (benches_scale.cpp).
void benchScaling(BenchContext& ctx);             // E18

// Web-scale ingest & memory campaign: peak-RSS-annotated general SYNC
// cells on 10^6..10^7-node graphs (benches_scale.cpp).
void benchScaleReal(BenchContext& ctx);           // E19

// Figure / lemma probes (benches_figs.cpp).
void benchFig1EmptySelection(BenchContext& ctx);  // E6
void benchFig2Oscillation(BenchContext& ctx);     // E7
void benchFig5SyncProbe(BenchContext& ctx);       // E8
void benchFig7AsyncProbe(BenchContext& ctx);      // E9
void benchFig6GuestSeeOff(BenchContext& ctx);     // E10

// Ablations, lower bound, wall-clock telemetry (benches_misc.cpp).
void benchLowerBoundLine(BenchContext& ctx);      // E11
void benchAblationTechniques(BenchContext& ctx);  // E12
void benchAblationScheduler(BenchContext& ctx);   // E13
void benchWallclock(BenchContext& ctx);           // E14

// Tiny observed cells exercising the trace/observer API end to end; the
// CI trace-smoke gate runs it under --trace (benches_misc.cpp).
void benchTraceSmoke(BenchContext& ctx);          // E16

// Ad-hoc workloads: the --graphs/--placements/--ks spec cross-product
// (benches_misc.cpp).
void benchScenario(BenchContext& ctx);            // E17

// Fault loads vs protocols: the self-stabilization scorecard over the
// --faults axis (benches_faults.cpp).
void benchFaults(BenchContext& ctx);              // E20

}  // namespace disp::exp
