// Lower-bound anchor, ablations, and wall-clock telemetry (E11–E14).
#include <algorithm>
#include <chrono>
#include <cmath>

#include "algo/placement.hpp"
#include "algo/registry.hpp"
#include "core/scheduler.hpp"
#include "exp/benches.hpp"
#include "graph/spec.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"

namespace disp::exp {

// E11 — the Ω(k) lower-bound anchor (§1).
// On a path with all k agents at one end, any algorithm needs >= k-1
// rounds.  Reported: measured rounds / k for every algorithm — the paper's
// algorithm should sit at a small constant.
void benchLowerBoundLine(BenchContext& ctx) {
  const std::string name = "lower_bound_line";
  ctx.out << "# E11: lower-bound anchor — path, all agents at one end\n";
  SweepSpec spec;
  spec.name = name;
  spec.graphs = {"path"};
  spec.ks = kSweep(5, 9);
  spec.algorithms = {"rooted_sync", "general_sync",
                     "ks_sync", "rooted_async"};
  spec.seeds = ctx.seedsOr(3);
  spec.nOverK = 1.5;
  const SweepResult res = ctx.runner().run(spec);

  Table t({"k", "RootedSync/k", "Sudo-style/k", "KS/k", "RootedAsync(ep)/k"});
  for (const std::uint32_t k : spec.ks) {
    std::vector<const Cell*> row;
    for (const std::string& algo : spec.algorithms) {
      row.push_back(&res.at({"path", k, "rooted", "round_robin", algo}));
    }
    if (!std::all_of(row.begin(), row.end(),
                     [](const Cell* c) { return c->ran(); })) {
      continue;  // outside this --shard
    }
    t.row().cell(std::uint64_t{k});
    for (const Cell* c : row) t.cell(c->meanTime() / k, 2);
  }
  emitTable(ctx, name, "time/k ratios (lower bound = 1.0)", t);
}

// E12 — design-choice ablation.
// The paper's SYNC result stacks two techniques on the KS baseline:
//   level 0: KS sequential probing            -> O(min{m, kΔ})
//   level 1: + parallel probing w/ doubling   -> O(k log k)  (Sudo-style)
//   level 2: + seekers, empty nodes, oscillation -> O(k)     (Theorem 6.1)
// This bench isolates each level's contribution on a dense instance.
void benchAblationTechniques(BenchContext& ctx) {
  const std::string name = "ablation_techniques";
  ctx.out << "# E12: ablation — technique levels on a clique (k = n)\n";
  SweepSpec spec;
  spec.name = name;
  spec.graphs = {"complete"};
  spec.ks = kSweep(5, 9);
  spec.algorithms = {"ks_sync", "general_sync",
                     "rooted_sync"};
  spec.seeds = ctx.seedsOr(5);
  spec.nOverK = 1.0;
  const SweepResult res = ctx.runner().run(spec);

  Table t({"k", "KS(level0)", "doubling(level1)", "full(level2)",
           "lvl0/lvl2", "lvl1/lvl2"});
  for (const std::uint32_t k : spec.ks) {
    const Cell& l0 = res.at({"complete", k, "rooted", "round_robin", "ks_sync"});
    const Cell& l1 = res.at({"complete", k, "rooted", "round_robin", "general_sync"});
    const Cell& l2 = res.at({"complete", k, "rooted", "round_robin", "rooted_sync"});
    if (!l0.ran() || !l1.ran() || !l2.ran()) continue;  // outside this --shard
    t.row().cell(std::uint64_t{k});
    timeCell(t, l0);
    timeCell(t, l1);
    timeCell(t, l2);
    t.cell(l0.meanTime() / l2.meanTime(), 2).cell(l1.meanTime() / l2.meanTime(), 2);
  }
  emitTable(ctx, name, "rounds by technique level (speedups vs full algorithm)", t);
}

// E13 — scheduler-adversary ablation.
// Epoch counts of the ASYNC algorithms under increasingly adversarial
// activation schedules.  Epoch-measured time should be scheduler-robust
// (that is the point of the epoch definition); raw activations are not.
void benchAblationScheduler(BenchContext& ctx) {
  const std::string name = "ablation_scheduler";
  ctx.out << "# E13: ablation — scheduler adversaries (ASYNC)\n";
  const auto k = static_cast<std::uint32_t>(96 * scale());
  SweepSpec spec;
  spec.name = name;
  spec.graphs = {"er"};
  spec.ks = {k};
  spec.algorithms = {"rooted_async", "ks_async"};
  spec.schedulers = knownSchedulers();
  spec.seeds = ctx.seedsOr(23);
  const SweepResult res = ctx.runner().run(spec);

  const bool ci = spec.seeds.size() > 1;
  std::vector<std::string> hdr{"algo", "sched", "k"};
  timeHeader(hdr, "epochs", ci);
  hdr.insert(hdr.end(), {"activations", "act/epoch"});
  Table t(hdr);
  for (const std::string& algo : spec.algorithms) {
    for (const std::string& sched : spec.schedulers) {
      const Cell& r = res.at({"er", k, "rooted", sched, algo});
      if (!r.allDispersed()) continue;
      double activations = 0.0;
      for (const RunRecord& rec : r.replicates) {
        activations += double(rec.run.activations);
      }
      activations /= double(r.replicates.size());
      t.row().cell(algorithmDisplayName(algo)).cell(sched).cell(std::uint64_t{k});
      timeCellCi(t, r, ci);
      if (r.replicates.size() == 1) {
        t.cell(r.first().run.activations);
      } else {
        t.cell(activations, 1);
      }
      t.cell(activations / r.meanTime(), 1);
    }
  }
  emitTable(ctx, name, "epoch robustness across schedulers", t);
}

// E14 — wall-clock telemetry: how fast the *simulator* itself runs each
// algorithm (ms per full dispersion run, plus activations/sec and
// moves/sec derived from the run counters so hot-path speedups read as
// throughput).  This is engineering data, not a paper claim — the paper's
// "time" is rounds/epochs, measured by E1–E4.  Each configuration repeats
// until 100ms of wall time has accumulated.
void benchWallclock(BenchContext& ctx) {
  const std::string name = "wallclock";
  ctx.out << "# E14: wall-clock — simulator throughput (telemetry, not a claim)\n";
  struct Config {
    const char* algo;
    const char* sched;
    std::uint32_t k;
    std::uint32_t clusters;
    unsigned runThreads = 1;
  };
  const std::vector<Config> configs{
      {"rooted_sync", "round_robin", 64, 1},
      {"rooted_sync", "round_robin", 128, 1},
      {"rooted_sync", "round_robin", 256, 1},
      {"rooted_sync", "round_robin", 256, 1, 4},  // intra-run lanes (E18 has more)
      {"rooted_async", "uniform", 64, 1},
      {"rooted_async", "uniform", 128, 1},
      {"ks_sync", "round_robin", 64, 1},
      {"ks_sync", "round_robin", 128, 1},
      {"ks_sync", "round_robin", 256, 1},
      {"general_sync", "round_robin", 64, 4},
      {"general_sync", "round_robin", 128, 4},
  };
  Table t({"algo", "sched", "k", "l", "rt", "runs", "total_ms", "ms/run", "Mact/s",
           "Mmoves/s", "peak_rss_mb"});
  for (const Config& cfg : configs) {
    // Per-config peak RSS (telemetry like ms): watermark reset before the
    // graph build so the row covers everything the config touches.
    (void)disp::resetPeakRss();
    const Graph g = makeGraph("er", 2 * cfg.k, 7);
    const auto start = std::chrono::steady_clock::now();
    std::uint64_t runs = 0;
    std::uint64_t activations = 0;
    std::uint64_t moves = 0;
    double elapsedMs = 0.0;
    do {
      const Placement p = PlacementSpec::parse(clustersPlacement(cfg.clusters))
                              .place(g, cfg.k, 3);
      RunOptions opts;
      opts.algorithm = cfg.algo;
      opts.scheduler = cfg.sched;
      opts.seed = 5;
      opts.runThreads = cfg.runThreads;
      const RunResult r = runSession(g, p, opts);
      DISP_CHECK(r.dispersed, "wallclock config failed to disperse");
      ++runs;
      activations += r.activations;
      moves += r.totalMoves;
      elapsedMs = std::chrono::duration<double, std::milli>(
                      std::chrono::steady_clock::now() - start)
                      .count();
    } while (elapsedMs < 100.0 || runs < 3);
    // Throughput in millions per second: CCM cycles simulated (SYNC counts
    // k per round by definition) and edge traversals applied.
    const double seconds = elapsedMs / 1000.0;
    t.row()
        .cell(algorithmDisplayName(cfg.algo))
        .cell(cfg.sched)
        .cell(std::uint64_t{cfg.k})
        .cell(std::uint64_t{cfg.clusters})
        .cell(std::uint64_t{cfg.runThreads})
        .cell(runs)
        .cell(elapsedMs, 1)
        .cell(elapsedMs / double(runs), 3)
        .cell(double(activations) / seconds / 1e6, 2)
        .cell(double(moves) / seconds / 1e6, 2)
        .cell(disp::peakRssMb(), 1);
  }
  emitTable(ctx, name, "simulator wall-clock per dispersion run", t);
}

// E16 — trace smoke: tiny cells covering both engines, the rooted and the
// general (subsumption-heavy) protocols, so a `--trace` run of this suite
// exercises every TraceEvent kind the library emits.  The CI gate pipes
// the resulting JSONL through scripts/check_trace.sh.
void benchTraceSmoke(BenchContext& ctx) {
  const std::string name = "trace_smoke";
  ctx.out << "# E16: trace smoke — tiny observed cells (for --trace)\n";
  const bool ci = ctx.seedOverride.size() > 1;
  std::vector<std::string> hdr{"algo", "family", "k", "l", "sched"};
  timeHeader(hdr, "time", ci);
  hdr.emplace_back("dispersed");
  Table t(hdr);

  const auto addRows = [&](const SweepSpec& spec, const SweepResult& res) {
    for (const std::string& algo : spec.algorithms) {
      for (const std::string& sched : spec.schedulers) {
        const Cell& c = res.at({spec.graphs.front(), spec.ks.front(),
                                spec.placements.front(), sched, algo});
        if (!c.ran()) continue;  // outside this --shard
        t.row()
            .cell(algorithmDisplayName(algo))
            .cell(spec.graphs.front())
            .cell(std::uint64_t{spec.ks.front()})
            .cell(PlacementSpec::parse(spec.placements.front()).tableLabel())
            .cell(sched);
        timeCellCi(t, c, ci);
        t.cell(std::string(c.allDispersed() ? "yes" : "NO"));
      }
    }
  };

  SweepSpec rooted;
  rooted.name = name;
  rooted.graphs = {"er"};
  rooted.ks = {16};
  rooted.algorithms = {"rooted_sync", "rooted_async", "ks_sync", "ks_async"};
  rooted.seeds = ctx.seedsOr(5);
  const SweepResult rootedRes = ctx.runner().run(rooted);
  addRows(rooted, rootedRes);

  // ℓ = 4 clusters: meetings, freezes, subsumption collapses show up in
  // the trace for both general protocols.
  SweepSpec general;
  general.name = name;
  general.graphs = {"grid"};
  general.ks = {16};
  general.algorithms = {"general_sync", "general_async"};
  general.placements = {"clusters:l=4"};
  general.seeds = ctx.seedsOr(5);
  const SweepResult generalRes = ctx.runner().run(general);
  addRows(general, generalRes);

  emitTable(ctx, name, "trace smoke cells", t);
}

// E17 — ad-hoc scenarios: the cross-product of whatever --graphs /
// --placements / --ks specs the caller passes (DESIGN.md §8 grammar),
// driven through the two general-configuration protocols (which accept
// every placement kind).  Defaults keep `disp_bench all` cheap: one small
// ER sweep over rooted + 4-cluster starts.
void benchScenario(BenchContext& ctx) {
  const std::string name = "scenario";
  ctx.out << "# E17: scenario — ad-hoc workloads (--graphs/--placements/--ks)\n";
  SweepSpec spec;
  spec.name = name;
  spec.graphs = ctx.graphsOr({"er"});
  spec.ks = ctx.ksOr(kSweep(4, 6));
  spec.algorithms = {"general_sync", "general_async"};
  spec.placements = ctx.placementsOr({"rooted", "clusters:l=4"});
  spec.seeds = ctx.seedsOr(17);
  const SweepResult res = ctx.runner().run(spec);

  const bool ci = spec.seeds.size() > 1;
  std::vector<std::string> hdr{"graph", "k", "placement", "algo", "n", "m",
                               "Delta"};
  timeHeader(hdr, "time", ci);
  hdr.emplace_back("dispersed");
  Table t(hdr);
  for (const std::string& graph : spec.graphs) {
    for (const std::uint32_t k : spec.scaledKs()) {
      for (const std::string& place : spec.placements) {
        for (const std::string& algo : spec.algorithms) {
          const Cell& c = res.at({graph, k, place, "round_robin", algo});
          if (!c.ran()) continue;  // outside this --shard
          t.row()
              .cell(graph)
              .cell(std::uint64_t{k})
              .cell(PlacementSpec::parse(place).toString())
              .cell(algorithmDisplayName(algo))
              .cell(std::uint64_t{c.first().n})
              .cell(c.first().edges)
              .cell(std::uint64_t{c.first().maxDegree});
          timeCellCi(t, c, ci);
          t.cell(std::string(c.allDispersed() ? "yes" : "NO"));
        }
      }
    }
  }
  emitTable(ctx, name, "ad-hoc scenario cells", t);
}

}  // namespace disp::exp
