#pragma once
// Parallel execution of SweepSpecs.
//
// BatchRunner enumerates a spec's cells, constructs every distinct graph
// exactly once (immutable Graph instances are shared by const reference
// across all concurrent runs whose GraphSpec::instanceKey matches —
// `file:` graphs load once for *all* seeds; runSession builds all mutable
// state per call, see DESIGN.md §5), then executes the (cell × seed) work
// items over a std::thread pool.  Results land in preallocated slots, so
// the output is bit-identical for any worker count.
//
// Sharding (DESIGN.md §8): shardIndex/shardCount partition the canonical
// cell enumeration by index — cell i runs iff i % shardCount == shardIndex
// — so N disp_bench processes with --shard=0/N .. N-1/N cover a sweep
// disjointly and deterministically.  Skipped cells keep their key with no
// replicates (Cell::ran() == false); scripts/merge_jsonl.sh recombines the
// shards' JSONL outputs.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>

#include "exp/sweep.hpp"

namespace disp::exp {

struct BatchOptions {
  /// Worker threads; 0 = hardware_concurrency, 1 = run inline.
  unsigned threads = 0;
  /// Deterministic cell partition: run cell i iff i % shardCount ==
  /// shardIndex.  Default 0/1 = run everything.
  unsigned shardIndex = 0;
  unsigned shardCount = 1;
  /// Intra-run lanes per replicate (CaseSpec::runThreads; SYNC only).
  /// Facts are lane-count invariant, so sweep results don't change — but
  /// cell-level `threads` and intra-run lanes multiply, so keep threads ==
  /// 1 when this is > 1 (disp_bench --run-threads enforces exactly that).
  unsigned runThreads = 1;
  /// When set, invoked once per cell as soon as its last replicate lands
  /// (summary already computed), in completion order — NOT canonical order.
  /// Calls are serialized under a runner-internal mutex, so the callback
  /// needs no locking of its own.  Large-k sweeps use this to stream rows
  /// to JSONL so a killed run keeps its completed cells.  Never invoked
  /// for cells outside this shard.
  std::function<void(const Cell&)> onCellDone;
  /// Memory telemetry: when true and threads == 1 (cells run one at a
  /// time, in order), the kernel peak-RSS watermark is reset right before
  /// each cell's first replicate and sampled into Cell::peakRssMb after
  /// its last — a per-cell high-water mark that still counts everything
  /// resident (shared Graph included).  Under concurrent cells the sample
  /// would be cross-cell noise, so it is skipped (peakRssMb stays 0).
  bool resetPeakRss = false;
  /// Enumerate-only mode (disp_bench --list-cells / the disp_fleet
  /// coordinator's shard sizing): when set, run() validates the spec and
  /// invokes this for every cell of the canonical enumeration — in order,
  /// with `owned` per the shard partition above — then returns a result
  /// whose cells carry keys but no replicates.  Nothing is simulated and
  /// no graph is built.
  std::function<void(std::size_t index, const CellKey& key, bool owned)> onCellListed;
  /// When set, run() adds the number of cells this shard owns (whether or
  /// not enumerate-only) — how disp_bench detects an empty shard.
  std::atomic<std::uint64_t>* ownedCells = nullptr;
  /// Observer plumbing: when set, invoked for every (cell, replicate)
  /// right before its run to install trace/snapshot hooks on the run's
  /// RunOptions.  Called concurrently from worker threads — both the hook
  /// and the observers it installs must be thread-safe (disp_bench's
  /// --trace sink serializes writes under its own mutex).  Observers never
  /// change run facts (DESIGN.md §7), so thread-count invariance holds.
  std::function<void(const CellKey&, std::uint64_t seed, RunOptions&)> observe;
};

/// Runs fn(0) .. fn(jobs-1), work-stealing over `threads` workers
/// (0 = hardware_concurrency).  fn must write only to per-index state.
/// The first exception thrown by any job is rethrown after all workers
/// drain.
void parallelFor(unsigned threads, std::size_t jobs,
                 const std::function<void(std::size_t)>& fn);

class BatchRunner {
 public:
  explicit BatchRunner(BatchOptions options = {}) : options_(options) {}

  /// Executes every (cell, seed) of the spec owned by this shard; cells
  /// come back in canonical enumeration order regardless of scheduling.
  [[nodiscard]] SweepResult run(const SweepSpec& spec) const;

 private:
  BatchOptions options_;
};

}  // namespace disp::exp
