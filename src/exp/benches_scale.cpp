// E15 — Table 1 at scale: the large-k sweeps the hot-path overhaul pays
// for (k = 2^10 .. 2^14, n = 2k).  SYNC rooted only: the paper's O(k)
// algorithm is the one whose simulation cost stays tractable at this size
// (total moves are Θ(k²) simulation facts regardless of engine speed).
//
// Cells stream: every finished cell is mirrored to the JSONL sink the
// moment its replicates land (completion order), so a killed sweep keeps
// its completed cells; the markdown tables still print in canonical order
// at the end.
#include <algorithm>
#include <chrono>
#include <fstream>
#include <mutex>
#include <thread>

#include "algo/general_sync.hpp"
#include "core/world.hpp"
#include "exp/benches.hpp"
#include "graph/graph_io.hpp"
#include "graph/spec.hpp"
#include "util/check.hpp"
#include "util/mem.hpp"

namespace disp::exp {

void benchTable1Scale(BenchContext& ctx) {
  const std::string name = "table1_scale";
  ctx.out << "# E15: Table 1 at scale — SYNC rooted, k=2^10..2^14\n";
  for (const std::string& family : ctx.graphsOr({"er", "grid", "randtree"})) {
    SweepSpec spec;
    spec.name = name;
    spec.graphs = {family};
    spec.ks = ctx.ksOr({1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14});
    spec.scale = scale();  // ks are literal, so fold DISP_BENCH_SCALE here
    spec.algorithms = {"rooted_sync"};
    spec.seeds = ctx.seedsOr(3);

    BatchRunner runner = ctx.runner();
    if (ctx.jsonl != nullptr) {
      BatchOptions opts = ctx.batch;
      opts.onCellDone = [&ctx, &name](const Cell& c) {
        // One progress row per finished cell (flushed by the sink); rows
        // carry the full simulation facts so partial runs stay usable.
        std::vector<std::pair<std::string, std::string>> fields;
        fields.emplace_back("sweep", name);
        fields.emplace_back("table", "cell");
        fields.emplace_back("family", c.key.graph);
        fields.emplace_back("k", std::to_string(c.key.k));
        fields.emplace_back("n", std::to_string(c.first().n));
        fields.emplace_back("rounds", fmt(c.meanTime(), c.replicates.size() == 1 ? 0 : 1));
        fields.emplace_back("moves", std::to_string(c.first().run.totalMoves));
        fields.emplace_back("dispersed", c.allDispersed() ? "yes" : "NO");
        ctx.jsonl->record(fields);
      };
      runner = BatchRunner(opts);
    }
    const SweepResult res = runner.run(spec);

    const bool ci = spec.seeds.size() > 1;
    std::vector<std::string> hdr{"k", "n", "m", "Delta"};
    timeHeader(hdr, "rounds", ci);
    hdr.insert(hdr.end(), {"rounds/k", "moves", "dispersed"});
    Table t(hdr);
    std::vector<double> ks, ours;
    for (const std::uint32_t k : spec.scaledKs()) {
      const Cell& c = res.at({family, k, "rooted", "round_robin", "rooted_sync"});
      if (!c.ran()) continue;  // outside this --shard
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{c.first().n})
          .cell(c.first().edges)
          .cell(std::uint64_t{c.first().maxDegree});
      timeCellCi(t, c, ci);
      t.cell(c.meanTime() / k, 2)
          .cell(c.first().run.totalMoves)
          .cell(std::string(c.allDispersed() ? "yes" : "NO"));
      if (c.allDispersed()) {
        ks.push_back(k);
        ours.push_back(c.meanTime());
      }
    }
    emitTable(ctx, name, "family: " + family, t);
    if (ks.size() >= 2) {
      emitNote(ctx, name, "fit",
               growthDiagnosisLine(family + "/RootedSync@scale", ks, ours));
    }
  }
}

// E18 — single-run scaling: wallclock of the largest table1_scale cell at
// --run-threads lanes 1/2/4/8.  Pure telemetry — the lane count must not
// change a single fact, and this bench enforces that (DISP_CHECK against
// the lanes=1 run).  Rows land in BENCH_scaling.json via
// scripts/record_bench_baseline.sh; hardware_threads is recorded so
// numbers from oversubscribed machines (CI containers pinned to one core)
// read as what they are.
void benchScaling(BenchContext& ctx) {
  const std::string name = "scaling";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ctx.out << "# E18: single-run scaling — wallclock vs --run-threads"
             " (hardware_threads=" << hw << ")\n";

  // Largest k of the (scaled) table1_scale axis; one timed run per lane
  // count against a shared prebuilt graph so wallclock isolates the run.
  SweepSpec sizing;
  sizing.name = name;
  sizing.ks = ctx.ksOr({1u << 14});
  sizing.scale = scale();
  const std::vector<std::uint32_t> ks = sizing.scaledKs();
  const std::uint32_t k = *std::max_element(ks.begin(), ks.end());
  const std::uint64_t seed = ctx.seedsOr(3).front();
  const unsigned laneCounts[] = {1, 2, 4, 8};

  for (const std::string& family : ctx.graphsOr({"er", "grid", "randtree"})) {
    CaseSpec base;
    base.graph = family;
    base.k = k;
    base.algorithm = "rooted_sync";
    base.seed = seed;
    const auto n = static_cast<std::uint32_t>(double(k) * base.nOverK);
    const Graph g = GraphSpec::parse(family).instantiate(n, seed, base.labeling);

    Table t({"k", "n", "run_threads", "rounds", "moves", "ms", "speedup",
             "oversubscribed", "dispersed"});
    RunRecord reference;
    double serialMs = 0.0;
    for (const unsigned lanes : laneCounts) {
      // Lane counts beyond the hardware say so in the row itself: their
      // "speedup" is scheduler-contention telemetry, not a scaling claim.
      const bool oversubscribed = lanes > hw;
      CaseSpec c = base;
      c.runThreads = lanes;
      const auto t0 = std::chrono::steady_clock::now();
      const RunRecord rec = runCell(g, c);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    t0)
              .count();
      DISP_CHECK(rec.error.empty(), "scaling cell failed: " + rec.error);
      if (lanes == 1) {
        reference = rec;
        serialMs = ms;
      } else {
        // The determinism contract, enforced: lanes change wallclock only.
        DISP_CHECK(rec.run.time == reference.run.time &&
                       rec.run.totalMoves == reference.run.totalMoves &&
                       rec.run.dispersed == reference.run.dispersed &&
                       rec.run.finalPositions == reference.run.finalPositions,
                   "run facts drifted across --run-threads values");
      }
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{rec.n})
          .cell(std::uint64_t{lanes})
          .cell(rec.run.time)
          .cell(rec.run.totalMoves)
          .cell(ms, 1)
          .cell(ms > 0.0 ? serialMs / ms : 0.0, 2)
          .cell(std::string(oversubscribed ? "yes" : "no"))
          .cell(std::string(rec.run.dispersed ? "yes" : "NO"));
      if (ctx.jsonl != nullptr) {
        std::vector<std::pair<std::string, std::string>> fields;
        fields.emplace_back("sweep", name);
        fields.emplace_back("table", "cell");
        fields.emplace_back("family", family);
        fields.emplace_back("k", std::to_string(k));
        fields.emplace_back("n", std::to_string(rec.n));
        fields.emplace_back("run_threads", std::to_string(lanes));
        fields.emplace_back("rounds", std::to_string(rec.run.time));
        fields.emplace_back("moves", std::to_string(rec.run.totalMoves));
        fields.emplace_back("ms", fmt(ms, 1));
        fields.emplace_back("speedup", fmt(ms > 0.0 ? serialMs / ms : 0.0, 2));
        fields.emplace_back("hardware_threads", std::to_string(hw));
        fields.emplace_back("oversubscribed", oversubscribed ? "yes" : "no");
        fields.emplace_back("dispersed", rec.run.dispersed ? "yes" : "NO");
        ctx.jsonl->record(fields);
      }
    }
    emitTable(ctx, name, "family: " + family, t);
  }
}

// E19 — web-scale ingest & memory campaign: general SYNC cells on
// 10^6-node generated graphs (er:fast / ba / rmat) and a 10^7-node on-disk
// dataset, every cell annotated with its process peak RSS and the
// CSR+cells lower bound it is gated against (rss_ratio <= 2 is the CI
// scale-smoke gate).  File datasets come from scripts/make_scale_data.sh;
// missing ones are skipped with a note so the sweep runs anywhere.
//
// Placements are spread-only by default: rooted is Θ(k²) total moves at
// these k, and clustered starts drive the subsumption machinery whose
// simulated marches recompute BFS distances per hop — both are simulation
// costs (not protocol facts) that make 2^20-agent cells intractable on one
// core.  Spread cells still build the full k-fiber engine + world, which
// is exactly what a memory campaign measures.
void benchScaleReal(BenchContext& ctx) {
  const std::string name = "scale_real";
  ctx.out << "# E19: web-scale memory campaign — SYNC general, peak RSS per cell\n";

  const std::vector<std::string> graphs = ctx.graphsOr(
      {"er:fast=1,n=1048576", "ba:n=1048576", "rmat:n=1048576",
       "file:bench/data/ba_1e7.e"});
  const std::vector<std::uint32_t> ks =
      ctx.ksOr({1u << 15, 1u << 16, 1u << 17, 1u << 18, 1u << 19, 1u << 20});
  const std::vector<std::string> placements = ctx.placementsOr({"spread"});

  // Declared-state floor in MiB: the CSR (offsets/targets/reverse), the
  // World's node and agent cells, and general_sync's per-agent state and
  // per-group context (one group per agent under the default spread
  // placement; under clustered overrides ℓ < k and the group term
  // overcounts — the ratio is campaign telemetry either way).  What the
  // 2x headroom in rss_ratio = peak_rss_mb / rss_lb_mb then gates is
  // everything *not* declared: fiber frames, occupancy views, the portTo
  // index, allocator slack — the overheads that would silently balloon if
  // someone hung a vector off a per-agent struct.
  const auto lowerBoundMb = [](std::uint64_t n, std::uint64_t m, std::uint64_t k) {
    const std::uint64_t graphBytes = 4 * (n + 1) + 16 * m;
    const std::uint64_t worldBytes = World::kNodeCellBytes * n + World::kAgentCellBytes * k;
    const std::uint64_t engineBytes =
        (GeneralSyncDispersion::kAgentStateBytes + GeneralSyncDispersion::kGroupCtxBytes) * k;
    return double(graphBytes + worldBytes + engineBytes) / double(1u << 20);
  };

  for (const std::string& graph : graphs) {
    if (graph.rfind("file:", 0) == 0) {
      const std::string path = graph.substr(5);
      if (!std::ifstream(path).good()) {
        emitNote(ctx, name, "note",
                 "skipped " + graph +
                     " (dataset not materialized; run scripts/make_scale_data.sh)");
        continue;
      }
      if (!ctx.enumerateOnly) {
        // Ingest demonstration: time the streaming load on its own, with
        // the RSS watermark reset so the row isolates the loader's
        // footprint (two passes over the file, id map + mapped pairs
        // transient, CSR emitted directly).  BatchRunner reloads below for
        // the cells.
        (void)disp::resetPeakRss();
        const auto t0 = std::chrono::steady_clock::now();
        const Graph g = loadAnyGraph(path);
        const double loadMs = std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() - t0)
                                  .count();
        Table ingest({"file", "n", "m", "load_ms", "peak_rss_mb"});
        ingest.row()
            .cell(path)
            .cell(std::uint64_t{g.nodeCount()})
            .cell(g.edgeCount())
            .cell(loadMs, 1)
            .cell(disp::peakRssMb(), 1);
        emitTable(ctx, name, "ingest: " + path, ingest);
      }
    }

    SweepSpec spec;
    spec.name = name;
    spec.graphs = {graph};
    spec.ks = ks;
    spec.scale = scale();  // ks are literal, so fold DISP_BENCH_SCALE here
    spec.algorithms = {"general_sync"};
    spec.placements = placements;
    spec.seeds = ctx.seedsOr(11);

    // One BatchRunner invocation per graph, serial: the runner builds all
    // of a sweep's distinct graphs up front, so a single cross-product
    // would hold every graph resident at once and charge cell A's RSS
    // watermark with graph B; and concurrent cells can't attribute a
    // process-wide watermark at all (BatchOptions::resetPeakRss).
    BatchOptions opts = ctx.batch;
    opts.threads = 1;
    opts.resetPeakRss = true;
    opts.onCellDone = [&ctx, &name, &lowerBoundMb](const Cell& c) {
      if (ctx.jsonl == nullptr) return;
      const double lb =
          lowerBoundMb(c.first().n, c.first().edges, c.key.k);
      std::vector<std::pair<std::string, std::string>> fields;
      fields.emplace_back("sweep", name);
      fields.emplace_back("table", "cell");
      fields.emplace_back("family", c.key.graph);
      fields.emplace_back("placement", c.key.placement);
      fields.emplace_back("k", std::to_string(c.key.k));
      fields.emplace_back("n", std::to_string(c.first().n));
      fields.emplace_back("m", std::to_string(c.first().edges));
      fields.emplace_back("rounds",
                          fmt(c.meanTime(), c.replicates.size() == 1 ? 0 : 1));
      fields.emplace_back("moves", std::to_string(c.first().run.totalMoves));
      fields.emplace_back("peak_rss_mb", fmt(c.peakRssMb, 1));
      fields.emplace_back("rss_lb_mb", fmt(lb, 1));
      fields.emplace_back("rss_ratio",
                          fmt(lb > 0.0 ? c.peakRssMb / lb : 0.0, 2));
      fields.emplace_back("dispersed", c.allDispersed() ? "yes" : "NO");
      ctx.jsonl->record(fields);
    };
    const SweepResult res = BatchRunner(opts).run(spec);

    Table t({"placement", "k", "n", "m", "rounds", "moves", "peak_rss_mb",
             "rss_lb_mb", "rss_ratio", "dispersed"});
    for (const std::string& place : spec.placements) {
      for (const std::uint32_t k : spec.scaledKs()) {
        const Cell& c = res.at({graph, k, place, "round_robin", "general_sync"});
        if (!c.ran()) continue;  // outside this --shard
        const double lb = lowerBoundMb(c.first().n, c.first().edges, k);
        t.row()
            .cell(place)
            .cell(std::uint64_t{k})
            .cell(std::uint64_t{c.first().n})
            .cell(c.first().edges)
            .cell(c.meanTime(), c.replicates.size() == 1 ? 0 : 1)
            .cell(c.first().run.totalMoves)
            .cell(c.peakRssMb, 1)
            .cell(lb, 1)
            .cell(lb > 0.0 ? c.peakRssMb / lb : 0.0, 2)
            .cell(std::string(c.allDispersed() ? "yes" : "NO"));
      }
    }
    emitTable(ctx, name, "graph: " + graph, t);
  }
}

}  // namespace disp::exp
