// E15 — Table 1 at scale: the large-k sweeps the hot-path overhaul pays
// for (k = 2^10 .. 2^14, n = 2k).  SYNC rooted only: the paper's O(k)
// algorithm is the one whose simulation cost stays tractable at this size
// (total moves are Θ(k²) simulation facts regardless of engine speed).
//
// Cells stream: every finished cell is mirrored to the JSONL sink the
// moment its replicates land (completion order), so a killed sweep keeps
// its completed cells; the markdown tables still print in canonical order
// at the end.
#include <mutex>

#include "exp/benches.hpp"

namespace disp::exp {

void benchTable1Scale(BenchContext& ctx) {
  const std::string name = "table1_scale";
  ctx.out << "# E15: Table 1 at scale — SYNC rooted, k=2^10..2^14\n";
  for (const std::string& family : ctx.graphsOr({"er", "grid", "randtree"})) {
    SweepSpec spec;
    spec.name = name;
    spec.graphs = {family};
    spec.ks = ctx.ksOr({1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14});
    spec.scale = scale();  // ks are literal, so fold DISP_BENCH_SCALE here
    spec.algorithms = {"rooted_sync"};
    spec.seeds = ctx.seedsOr(3);

    BatchRunner runner = ctx.runner();
    if (ctx.jsonl != nullptr) {
      BatchOptions opts = ctx.batch;
      opts.onCellDone = [&ctx, &name](const Cell& c) {
        // One progress row per finished cell (flushed by the sink); rows
        // carry the full simulation facts so partial runs stay usable.
        std::vector<std::pair<std::string, std::string>> fields;
        fields.emplace_back("sweep", name);
        fields.emplace_back("table", "cell");
        fields.emplace_back("family", c.key.graph);
        fields.emplace_back("k", std::to_string(c.key.k));
        fields.emplace_back("n", std::to_string(c.first().n));
        fields.emplace_back("rounds", fmt(c.meanTime(), c.replicates.size() == 1 ? 0 : 1));
        fields.emplace_back("moves", std::to_string(c.first().run.totalMoves));
        fields.emplace_back("dispersed", c.allDispersed() ? "yes" : "NO");
        ctx.jsonl->record(fields);
      };
      runner = BatchRunner(opts);
    }
    const SweepResult res = runner.run(spec);

    const bool ci = spec.seeds.size() > 1;
    std::vector<std::string> hdr{"k", "n", "m", "Delta"};
    timeHeader(hdr, "rounds", ci);
    hdr.insert(hdr.end(), {"rounds/k", "moves", "dispersed"});
    Table t(hdr);
    std::vector<double> ks, ours;
    for (const std::uint32_t k : spec.scaledKs()) {
      const Cell& c = res.at({family, k, "rooted", "round_robin", "rooted_sync"});
      if (!c.ran()) continue;  // outside this --shard
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{c.first().n})
          .cell(c.first().edges)
          .cell(std::uint64_t{c.first().maxDegree});
      timeCellCi(t, c, ci);
      t.cell(c.meanTime() / k, 2)
          .cell(c.first().run.totalMoves)
          .cell(std::string(c.allDispersed() ? "yes" : "NO"));
      if (c.allDispersed()) {
        ks.push_back(k);
        ours.push_back(c.meanTime());
      }
    }
    emitTable(ctx, name, "family: " + family, t);
    if (ks.size() >= 2) {
      emitNote(ctx, name, "fit",
               growthDiagnosisLine(family + "/RootedSync@scale", ks, ours));
    }
  }
}

}  // namespace disp::exp
