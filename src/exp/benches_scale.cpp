// E15 — Table 1 at scale: the large-k sweeps the hot-path overhaul pays
// for (k = 2^10 .. 2^14, n = 2k).  SYNC rooted only: the paper's O(k)
// algorithm is the one whose simulation cost stays tractable at this size
// (total moves are Θ(k²) simulation facts regardless of engine speed).
//
// Cells stream: every finished cell is mirrored to the JSONL sink the
// moment its replicates land (completion order), so a killed sweep keeps
// its completed cells; the markdown tables still print in canonical order
// at the end.
#include <algorithm>
#include <chrono>
#include <mutex>
#include <thread>

#include "exp/benches.hpp"
#include "graph/spec.hpp"
#include "util/check.hpp"

namespace disp::exp {

void benchTable1Scale(BenchContext& ctx) {
  const std::string name = "table1_scale";
  ctx.out << "# E15: Table 1 at scale — SYNC rooted, k=2^10..2^14\n";
  for (const std::string& family : ctx.graphsOr({"er", "grid", "randtree"})) {
    SweepSpec spec;
    spec.name = name;
    spec.graphs = {family};
    spec.ks = ctx.ksOr({1u << 10, 1u << 11, 1u << 12, 1u << 13, 1u << 14});
    spec.scale = scale();  // ks are literal, so fold DISP_BENCH_SCALE here
    spec.algorithms = {"rooted_sync"};
    spec.seeds = ctx.seedsOr(3);

    BatchRunner runner = ctx.runner();
    if (ctx.jsonl != nullptr) {
      BatchOptions opts = ctx.batch;
      opts.onCellDone = [&ctx, &name](const Cell& c) {
        // One progress row per finished cell (flushed by the sink); rows
        // carry the full simulation facts so partial runs stay usable.
        std::vector<std::pair<std::string, std::string>> fields;
        fields.emplace_back("sweep", name);
        fields.emplace_back("table", "cell");
        fields.emplace_back("family", c.key.graph);
        fields.emplace_back("k", std::to_string(c.key.k));
        fields.emplace_back("n", std::to_string(c.first().n));
        fields.emplace_back("rounds", fmt(c.meanTime(), c.replicates.size() == 1 ? 0 : 1));
        fields.emplace_back("moves", std::to_string(c.first().run.totalMoves));
        fields.emplace_back("dispersed", c.allDispersed() ? "yes" : "NO");
        ctx.jsonl->record(fields);
      };
      runner = BatchRunner(opts);
    }
    const SweepResult res = runner.run(spec);

    const bool ci = spec.seeds.size() > 1;
    std::vector<std::string> hdr{"k", "n", "m", "Delta"};
    timeHeader(hdr, "rounds", ci);
    hdr.insert(hdr.end(), {"rounds/k", "moves", "dispersed"});
    Table t(hdr);
    std::vector<double> ks, ours;
    for (const std::uint32_t k : spec.scaledKs()) {
      const Cell& c = res.at({family, k, "rooted", "round_robin", "rooted_sync"});
      if (!c.ran()) continue;  // outside this --shard
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{c.first().n})
          .cell(c.first().edges)
          .cell(std::uint64_t{c.first().maxDegree});
      timeCellCi(t, c, ci);
      t.cell(c.meanTime() / k, 2)
          .cell(c.first().run.totalMoves)
          .cell(std::string(c.allDispersed() ? "yes" : "NO"));
      if (c.allDispersed()) {
        ks.push_back(k);
        ours.push_back(c.meanTime());
      }
    }
    emitTable(ctx, name, "family: " + family, t);
    if (ks.size() >= 2) {
      emitNote(ctx, name, "fit",
               growthDiagnosisLine(family + "/RootedSync@scale", ks, ours));
    }
  }
}

// E18 — single-run scaling: wallclock of the largest table1_scale cell at
// --run-threads lanes 1/2/4/8.  Pure telemetry — the lane count must not
// change a single fact, and this bench enforces that (DISP_CHECK against
// the lanes=1 run).  Rows land in BENCH_scaling.json via
// scripts/record_bench_baseline.sh; hardware_threads is recorded so
// numbers from oversubscribed machines (CI containers pinned to one core)
// read as what they are.
void benchScaling(BenchContext& ctx) {
  const std::string name = "scaling";
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  ctx.out << "# E18: single-run scaling — wallclock vs --run-threads"
             " (hardware_threads=" << hw << ")\n";

  // Largest k of the (scaled) table1_scale axis; one timed run per lane
  // count against a shared prebuilt graph so wallclock isolates the run.
  SweepSpec sizing;
  sizing.name = name;
  sizing.ks = ctx.ksOr({1u << 14});
  sizing.scale = scale();
  const std::vector<std::uint32_t> ks = sizing.scaledKs();
  const std::uint32_t k = *std::max_element(ks.begin(), ks.end());
  const std::uint64_t seed = ctx.seedsOr(3).front();
  const unsigned laneCounts[] = {1, 2, 4, 8};

  for (const std::string& family : ctx.graphsOr({"er", "grid", "randtree"})) {
    CaseSpec base;
    base.graph = family;
    base.k = k;
    base.algorithm = "rooted_sync";
    base.seed = seed;
    const auto n = static_cast<std::uint32_t>(double(k) * base.nOverK);
    const Graph g = GraphSpec::parse(family).instantiate(n, seed, base.labeling);

    Table t({"k", "n", "run_threads", "rounds", "moves", "ms", "speedup",
             "dispersed"});
    RunRecord reference;
    double serialMs = 0.0;
    for (const unsigned lanes : laneCounts) {
      CaseSpec c = base;
      c.runThreads = lanes;
      const auto t0 = std::chrono::steady_clock::now();
      const RunRecord rec = runCell(g, c);
      const double ms =
          std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                    t0)
              .count();
      DISP_CHECK(rec.error.empty(), "scaling cell failed: " + rec.error);
      if (lanes == 1) {
        reference = rec;
        serialMs = ms;
      } else {
        // The determinism contract, enforced: lanes change wallclock only.
        DISP_CHECK(rec.run.time == reference.run.time &&
                       rec.run.totalMoves == reference.run.totalMoves &&
                       rec.run.dispersed == reference.run.dispersed &&
                       rec.run.finalPositions == reference.run.finalPositions,
                   "run facts drifted across --run-threads values");
      }
      t.row()
          .cell(std::uint64_t{k})
          .cell(std::uint64_t{rec.n})
          .cell(std::uint64_t{lanes})
          .cell(rec.run.time)
          .cell(rec.run.totalMoves)
          .cell(ms, 1)
          .cell(ms > 0.0 ? serialMs / ms : 0.0, 2)
          .cell(std::string(rec.run.dispersed ? "yes" : "NO"));
      if (ctx.jsonl != nullptr) {
        std::vector<std::pair<std::string, std::string>> fields;
        fields.emplace_back("sweep", name);
        fields.emplace_back("table", "cell");
        fields.emplace_back("family", family);
        fields.emplace_back("k", std::to_string(k));
        fields.emplace_back("n", std::to_string(rec.n));
        fields.emplace_back("run_threads", std::to_string(lanes));
        fields.emplace_back("rounds", std::to_string(rec.run.time));
        fields.emplace_back("moves", std::to_string(rec.run.totalMoves));
        fields.emplace_back("ms", fmt(ms, 1));
        fields.emplace_back("speedup", fmt(ms > 0.0 ? serialMs / ms : 0.0, 2));
        fields.emplace_back("hardware_threads", std::to_string(hw));
        fields.emplace_back("dispersed", rec.run.dispersed ? "yes" : "NO");
        ctx.jsonl->record(fields);
      }
    }
    emitTable(ctx, name, "family: " + family, t);
  }
}

}  // namespace disp::exp
