#include "exp/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>
#include <tuple>

#include "core/scheduler.hpp"
#include "graph/generators.hpp"

namespace disp::exp {

void parallelFor(unsigned threads, std::size_t jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, jobs));

  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);
}

SweepResult BatchRunner::run(const SweepSpec& spec) const {
  SweepResult result;
  result.spec = spec;

  const std::vector<CellKey> keys = enumerateCells(spec);

  // A typo'd scheduler name would otherwise degrade every async cell into
  // an errored replicate; validate the axis up front so it fails loudly.
  // (Validated at the spec's largest k: a weighted slow set bigger than a
  // *smaller* k is a per-cell condition, handled like any placement
  // mismatch below.)
  const std::vector<std::uint32_t> runKs = spec.scaledKs();
  const std::uint32_t maxK = *std::max_element(runKs.begin(), runKs.end());
  for (const std::string& sched : spec.schedulers) {
    (void)makeSchedulerByName(sched, maxK, 1);
  }
  result.cells.resize(keys.size());
  for (std::size_t i = 0; i < keys.size(); ++i) {
    result.cells[i].key = keys[i];
    result.cells[i].replicates.resize(spec.seeds.size());
  }

  // Build each distinct graph once.  Graphs differ only by (family, n,
  // seed) — n = k * nOverK and the labeling are fixed per spec — so cells
  // that vary algorithm / scheduler / clusters share one instance.
  using GraphKeyT = std::tuple<std::string, std::uint32_t, std::uint64_t>;
  std::map<GraphKeyT, Graph> graphs;
  for (const CellKey& key : keys) {
    const auto n = static_cast<std::uint32_t>(double(key.k) * spec.nOverK);
    for (const std::uint64_t seed : spec.seeds) {
      graphs.try_emplace({key.family, n, seed});
    }
  }
  {
    std::vector<std::pair<const GraphKeyT*, Graph*>> toBuild;
    toBuild.reserve(graphs.size());
    for (auto& [gk, g] : graphs) toBuild.emplace_back(&gk, &g);
    parallelFor(options_.threads, toBuild.size(), [&](std::size_t i) {
      const auto& [family, n, seed] = *toBuild[i].first;
      *toBuild[i].second = makeFamily({family, n, seed, spec.labeling});
    });
  }

  // One work item per (cell, replicate); each writes only its own slot.
  // Per-cell countdowns detect the last replicate so finished cells can be
  // summarized and streamed immediately (onCellDone).
  const std::size_t reps = spec.seeds.size();
  std::vector<std::atomic<std::size_t>> remaining(keys.size());
  for (auto& r : remaining) r.store(reps, std::memory_order_relaxed);
  std::mutex cellDoneMutex;
  parallelFor(options_.threads, keys.size() * reps, [&](std::size_t job) {
    const std::size_t cellIx = job / reps;
    const std::size_t repIx = job % reps;
    const CellKey& key = keys[cellIx];
    CaseSpec c;
    c.family = key.family;
    c.k = key.k;
    c.algorithm = key.algorithm;
    c.clusters = key.clusters;
    c.scheduler = key.scheduler;
    c.seed = spec.seeds[repIx];
    c.nOverK = spec.nOverK;
    c.labeling = spec.labeling;
    c.limit = spec.limit;
    if (options_.observe) {
      c.observe = [this, &key, seed = c.seed](RunOptions& opts) {
        options_.observe(key, seed, opts);
      };
    }
    const auto n = static_cast<std::uint32_t>(double(key.k) * spec.nOverK);
    const Graph& g = graphs.at({key.family, n, c.seed});
    RunRecord& slot = result.cells[cellIx].replicates[repIx];
    try {
      slot = runCell(g, c);
    } catch (const std::exception& e) {
      // A diverging replicate (round/activation limit hit) or a cell whose
      // algorithm rejects its placement (e.g. KS inside a clusterCounts
      // cross-product) degrades to an undispersed record instead of
      // aborting the rest of the sweep.
      slot = RunRecord{};
      slot.n = g.nodeCount();
      slot.maxDegree = g.maxDegree();
      slot.edges = g.edgeCount();
      slot.error = e.what();
    }
    if (remaining[cellIx].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last replicate of this cell: summarize (only this worker touches
      // the cell now) and stream it.
      Cell& cell = result.cells[cellIx];
      std::vector<double> times;
      times.reserve(cell.replicates.size());
      for (const RunRecord& r : cell.replicates) {
        if (r.error.empty()) times.push_back(double(r.run.time));
      }
      cell.time = summarize(times);
      if (options_.onCellDone) {
        const std::lock_guard<std::mutex> lock(cellDoneMutex);
        options_.onCellDone(cell);
      }
    }
  });
  return result;
}

}  // namespace disp::exp
