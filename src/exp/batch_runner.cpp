#include "exp/batch_runner.hpp"

#include <algorithm>
#include <atomic>
#include <map>
#include <mutex>
#include <thread>

#include "core/scheduler.hpp"
#include "graph/spec.hpp"
#include "util/mem.hpp"

namespace disp::exp {

void parallelFor(unsigned threads, std::size_t jobs,
                 const std::function<void(std::size_t)>& fn) {
  if (threads == 0) threads = std::max(1u, std::thread::hardware_concurrency());
  threads = static_cast<unsigned>(std::min<std::size_t>(threads, jobs));

  std::atomic<std::size_t> next{0};
  std::exception_ptr firstError;
  std::mutex errorMutex;
  const auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1);
      if (i >= jobs) return;
      try {
        fn(i);
      } catch (...) {
        const std::lock_guard<std::mutex> lock(errorMutex);
        if (!firstError) firstError = std::current_exception();
      }
    }
  };

  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (std::thread& t : pool) t.join();
  }
  if (firstError) std::rethrow_exception(firstError);
}

SweepResult BatchRunner::run(const SweepSpec& spec) const {
  DISP_REQUIRE(options_.shardCount >= 1 && options_.shardIndex < options_.shardCount,
               "shard must be I/N with I < N");
  SweepResult result;
  result.spec = spec;

  const std::vector<CellKey> keys = enumerateCells(spec);

  // A typo'd scheduler name would otherwise degrade every async cell into
  // an errored replicate; validate the axis up front so it fails loudly.
  // (Validated at the spec's largest k: a weighted slow set bigger than a
  // *smaller* k is a per-cell condition, handled like any placement
  // mismatch below.)
  const std::vector<std::uint32_t> runKs = spec.scaledKs();
  const std::uint32_t maxK = *std::max_element(runKs.begin(), runKs.end());
  for (const std::string& sched : spec.schedulers) {
    (void)makeSchedulerByName(sched, maxK, 1);
  }

  // Graph axis entries were validated by enumerateCells; parse each
  // distinct canonical string once.
  std::map<std::string, GraphSpec> parsed;
  for (const CellKey& key : keys) {
    parsed.try_emplace(key.graph, GraphSpec::parse(key.graph));
  }
  const auto contextN = [&spec](std::uint32_t k) {
    return static_cast<std::uint32_t>(double(k) * spec.nOverK);
  };

  // Shard partition over the canonical enumeration: skipped cells keep
  // their key but never allocate replicate slots.
  const std::size_t reps = spec.seeds.size();
  result.cells.resize(keys.size());
  std::vector<std::size_t> owned;
  for (std::size_t i = 0; i < keys.size(); ++i) {
    result.cells[i].key = keys[i];
    if (i % options_.shardCount == options_.shardIndex) {
      result.cells[i].replicates.resize(reps);
      owned.push_back(i);
    }
  }
  if (options_.ownedCells != nullptr) {
    options_.ownedCells->fetch_add(owned.size(), std::memory_order_relaxed);
  }

  // Enumerate-only: the axes are validated, the canonical order and shard
  // partition are fixed — report them and stop before any graph exists.
  if (options_.onCellListed) {
    for (std::size_t i = 0; i < keys.size(); ++i) {
      options_.onCellListed(i, keys[i],
                            i % options_.shardCount == options_.shardIndex);
    }
    for (Cell& cell : result.cells) cell.replicates.clear();
    return result;
  }

  // Build each distinct graph instance once.  The cache key is
  // GraphSpec::instanceKey — the canonical spec string plus the context
  // size and seed it actually consumes — so cells that vary algorithm /
  // scheduler / placement (and, for size-pinned or file specs, even k or
  // seed) share one instance.
  std::map<std::string, Graph> graphs;
  {
    struct BuildPlan {
      const GraphSpec* spec;
      std::uint32_t n;
      std::uint64_t seed;
    };
    std::map<std::string, BuildPlan> plans;
    for (const std::size_t i : owned) {
      const CellKey& key = keys[i];
      const GraphSpec& gs = parsed.at(key.graph);
      const std::uint32_t n = contextN(key.k);
      for (const std::uint64_t seed : spec.seeds) {
        plans.try_emplace(gs.instanceKey(n, seed), BuildPlan{&gs, n, seed});
      }
    }
    std::vector<std::pair<const BuildPlan*, Graph*>> toBuild;
    toBuild.reserve(plans.size());
    for (auto& [ik, plan] : plans) {
      toBuild.emplace_back(&plan, &graphs.try_emplace(ik).first->second);
    }
    parallelFor(options_.threads, toBuild.size(), [&](std::size_t i) {
      const BuildPlan& plan = *toBuild[i].first;
      *toBuild[i].second = plan.spec->instantiate(plan.n, plan.seed, spec.labeling);
    });
  }

  // One work item per owned (cell, replicate); each writes only its own
  // slot.  Per-cell countdowns detect the last replicate so finished cells
  // can be summarized and streamed immediately (onCellDone).
  std::vector<std::atomic<std::size_t>> remaining(keys.size());
  for (auto& r : remaining) r.store(reps, std::memory_order_relaxed);
  std::mutex cellDoneMutex;
  parallelFor(options_.threads, owned.size() * reps, [&](std::size_t job) {
    const std::size_t cellIx = owned[job / reps];
    const std::size_t repIx = job % reps;
    const CellKey& key = keys[cellIx];
    // Serial sweeps attribute the RSS watermark per cell: jobs run in
    // order, so repIx == 0 is the moment just before this cell's work.
    const bool sampleRss = options_.resetPeakRss && options_.threads == 1;
    if (sampleRss && repIx == 0) (void)disp::resetPeakRss();
    CaseSpec c;
    c.graph = key.graph;
    c.k = key.k;
    c.algorithm = key.algorithm;
    c.placement = key.placement;
    c.scheduler = key.scheduler;
    c.seed = spec.seeds[repIx];
    c.nOverK = spec.nOverK;
    c.labeling = spec.labeling;
    c.limit = spec.limit;
    c.runThreads = options_.runThreads;
    c.faults = key.faults;
    if (options_.observe) {
      c.observe = [this, &key, seed = c.seed](RunOptions& opts) {
        options_.observe(key, seed, opts);
      };
    }
    const Graph& g =
        graphs.at(parsed.at(key.graph).instanceKey(contextN(key.k), c.seed));
    RunRecord& slot = result.cells[cellIx].replicates[repIx];
    try {
      slot = runCell(g, c);
    } catch (const std::exception& e) {
      // A diverging replicate (round/activation limit hit) or a cell whose
      // algorithm rejects its placement (e.g. KS inside a general-placement
      // cross-product) degrades to an undispersed record instead of
      // aborting the rest of the sweep.
      slot = RunRecord{};
      slot.n = g.nodeCount();
      slot.maxDegree = g.maxDegree();
      slot.edges = g.edgeCount();
      slot.error = e.what();
    }
    if (remaining[cellIx].fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last replicate of this cell: summarize (only this worker touches
      // the cell now) and stream it.
      Cell& cell = result.cells[cellIx];
      std::vector<double> times;
      times.reserve(cell.replicates.size());
      for (const RunRecord& r : cell.replicates) {
        if (r.error.empty()) times.push_back(double(r.run.time));
      }
      cell.time = summarize(times);
      if (sampleRss) cell.peakRssMb = disp::peakRssMb();
      if (options_.onCellDone) {
        const std::lock_guard<std::mutex> lock(cellDoneMutex);
        options_.onCellDone(cell);
      }
    }
  });
  return result;
}

}  // namespace disp::exp
