#include "exp/sink.hpp"

#include <cstdio>
#include <ostream>

namespace disp::exp {

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonlWriter::record(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ", ";
    first = false;
    appendJsonString(line, key);
    line += ": ";
    appendJsonString(line, value);
  }
  line += "}";
  // Flush per row: a killed large-k sweep keeps every row written so far
  // (the rows are also the unit scripts/record_bench_baseline.sh parses).
  os_ << line << '\n' << std::flush;
}

void emitTable(BenchContext& ctx, const std::string& sweep, const std::string& title,
               const Table& t) {
  t.print(ctx.out, title);
  if (!ctx.jsonl) return;
  const std::vector<std::string>& header = t.header();
  for (const std::vector<std::string>& row : t.data()) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.reserve(header.size() + 2);
    fields.emplace_back("sweep", sweep);
    fields.emplace_back("table", title);
    for (std::size_t i = 0; i < header.size() && i < row.size(); ++i) {
      fields.emplace_back(header[i], row[i]);
    }
    ctx.jsonl->record(fields);
  }
}

void emitNote(BenchContext& ctx, const std::string& sweep, const std::string& field,
              const std::string& line) {
  ctx.out << line << "\n";
  if (ctx.jsonl) ctx.jsonl->record({{"sweep", sweep}, {field, line}});
}

void timeCell(Table& t, const Cell& c) {
  if (c.replicates.size() == 1) {
    t.cell(c.first().run.time);
  } else {
    t.cell(c.meanTime(), 1);
  }
}

void timeHeader(std::vector<std::string>& header, const std::string& name, bool ci) {
  header.push_back(name);
  if (ci) header.push_back(name + " ±95");
}

void timeCellCi(Table& t, const Cell& c, bool ci) {
  timeCell(t, c);
  if (ci) t.cell(ci95(c.time), 1);
}

void TraceJsonl::observe(const CellKey& key, std::uint64_t seed, RunOptions& opts) {
  opts.sampleEvery = sampleEvery_;
  const std::string cell = key.describe();
  const std::string seedStr = std::to_string(seed);
  opts.onEvent = [this, cell, seedStr](const TraceEvent& e) {
    const std::lock_guard<std::mutex> lock(mutex_);
    writer_.record(
        {{"cell", cell},
         {"seed", seedStr},
         {"event", traceEventKindName(e.kind)},
         {"t", std::to_string(e.time)},
         {"agent", e.agent == kNoAgent ? "-" : std::to_string(e.agent)},
         {"node", e.node == kInvalidNode ? "-" : std::to_string(e.node)},
         {"a", e.a == kNoTraceLabel ? "-" : std::to_string(e.a)},
         {"b", e.b == kNoTraceLabel ? "-" : std::to_string(e.b)}});
  };
  const auto snapshot = [this, cell, seedStr](const StepSnapshot& s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    writer_.record({{"cell", cell},
                    {"seed", seedStr},
                    {"event", "sample"},
                    {"t", std::to_string(s.time)},
                    {"epochs", std::to_string(s.epochs)},
                    {"settled", std::to_string(s.settled)},
                    {"moves", std::to_string(s.totalMoves)}});
  };
  opts.onRound = snapshot;
  opts.onActivation = snapshot;
}

TrajectoryCsv::TrajectoryCsv(std::ostream& os, std::uint64_t sampleEvery)
    : os_(os), sampleEvery_(sampleEvery) {
  os_ << "cell,seed,t,epochs,settled,moves\n";
}

void TrajectoryCsv::observe(const CellKey& key, std::uint64_t seed,
                            RunOptions& opts) {
  opts.sampleEvery = sampleEvery_;
  // CSV-quote the cell key (it contains no quotes, but does contain
  // spaces/equals signs that some readers split on).
  const std::string cell = "\"" + key.describe() + "\"";
  const std::string seedStr = std::to_string(seed);
  const auto snapshot = [this, cell, seedStr](const StepSnapshot& s) {
    const std::lock_guard<std::mutex> lock(mutex_);
    // Flush per row, like the JSONL sinks: a killed sweep keeps every
    // sampled point written so far.
    os_ << cell << ',' << seedStr << ',' << s.time << ',' << s.epochs << ','
        << s.settled << ',' << s.totalMoves << '\n'
        << std::flush;
  };
  opts.onRound = snapshot;
  opts.onActivation = snapshot;
}

}  // namespace disp::exp
