#include "exp/sink.hpp"

#include <cstdio>
#include <ostream>

namespace disp::exp {

namespace {

void appendJsonString(std::string& out, const std::string& s) {
  out += '"';
  for (const char ch : s) {
    switch (ch) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(ch) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", ch);
          out += buf;
        } else {
          out += ch;
        }
    }
  }
  out += '"';
}

}  // namespace

void JsonlWriter::record(
    const std::vector<std::pair<std::string, std::string>>& fields) {
  std::string line = "{";
  bool first = true;
  for (const auto& [key, value] : fields) {
    if (!first) line += ", ";
    first = false;
    appendJsonString(line, key);
    line += ": ";
    appendJsonString(line, value);
  }
  line += "}";
  // Flush per row: a killed large-k sweep keeps every row written so far
  // (the rows are also the unit scripts/record_bench_baseline.sh parses).
  os_ << line << '\n' << std::flush;
}

void emitTable(BenchContext& ctx, const std::string& sweep, const std::string& title,
               const Table& t) {
  t.print(ctx.out, title);
  if (!ctx.jsonl) return;
  const std::vector<std::string>& header = t.header();
  for (const std::vector<std::string>& row : t.data()) {
    std::vector<std::pair<std::string, std::string>> fields;
    fields.reserve(header.size() + 2);
    fields.emplace_back("sweep", sweep);
    fields.emplace_back("table", title);
    for (std::size_t i = 0; i < header.size() && i < row.size(); ++i) {
      fields.emplace_back(header[i], row[i]);
    }
    ctx.jsonl->record(fields);
  }
}

void emitNote(BenchContext& ctx, const std::string& sweep, const std::string& field,
              const std::string& line) {
  ctx.out << line << "\n";
  if (ctx.jsonl) ctx.jsonl->record({{"sweep", sweep}, {field, line}});
}

void timeCell(Table& t, const Cell& c) {
  if (c.replicates.size() == 1) {
    t.cell(c.first().run.time);
  } else {
    t.cell(c.meanTime(), 1);
  }
}

}  // namespace disp::exp
