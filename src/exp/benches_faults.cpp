// E20 — the fault campaign: fault loads vs protocols (DESIGN.md §11).
//
// Crosses the six registry algorithms with a default panel of FaultSpec
// loads (overridable via --faults) and scores *self-stabilization*: a cell
// recovers iff every replicate ends in a dispersed configuration that was
// reached at or after its last injected fault and held to the end of the
// run.  Under faults the round/activation cap is a verdict (`cap`), not an
// error, so non-terminating protocols still report whether the
// configuration itself stabilized.
#include <algorithm>

#include "algo/registry.hpp"
#include "core/faults.hpp"
#include "exp/benches.hpp"

namespace disp::exp {

namespace {

/// Scorecard columns aggregated over a cell's replicates.
struct FaultScore {
  bool allDispersed = true;
  bool anyCap = false;
  bool anyError = false;
  bool allRecovered = true;
  std::uint64_t maxRecoveredAt = 0;
  std::uint64_t maxInjected = 0;
};

FaultScore score(const Cell& c) {
  FaultScore s;
  for (const RunRecord& r : c.replicates) {
    if (!r.error.empty() || !r.run.protocolError.empty()) s.anyError = true;
    s.allDispersed = s.allDispersed && r.run.dispersed;
    s.anyCap = s.anyCap || r.run.limitHit;
    s.allRecovered = s.allRecovered && r.error.empty() && r.run.recovered;
    s.maxRecoveredAt = std::max(s.maxRecoveredAt, r.run.recoveredAt);
    s.maxInjected = std::max(s.maxInjected, r.run.faultsInjected);
  }
  return s;
}

}  // namespace

// E20 — self-stabilization scorecard.  SYNC protocols run under a tight
// explicit round cap (the verdict point for non-terminating cells); ASYNC
// protocols get a proportionally larger activation cap, since their fault
// times scale by k (one round-equivalent = k activations).
void benchFaults(BenchContext& ctx) {
  const std::string name = "faults";
  ctx.out << "# E20: fault campaign — fault loads vs protocols (--faults)\n";
  const std::vector<std::string> loads = ctx.faultsOr({
      "none",
      "crash:rate=0.25,restart=64",
      "crash:rate=0.25",
      "churn:edges=4,every=32",
      "silent:count=2",
  });

  const bool ci = ctx.seedOverride.size() > 1;
  std::vector<std::string> hdr{"algo", "k", "faults"};
  timeHeader(hdr, "time", ci);
  hdr.insert(hdr.end(), {"dispersed", "cap", "faults_n", "recovered",
                         "recovered_at"});
  Table t(hdr);

  const auto addRows = [&](const SweepSpec& spec, const SweepResult& res) {
    for (const std::uint32_t k : spec.scaledKs()) {
      for (const std::string& algo : spec.algorithms) {
        for (const std::string& load : spec.faults) {
          const Cell& c = res.at(
              {spec.graphs.front(), k, "rooted", "round_robin", algo, load});
          if (!c.ran()) continue;  // outside this --shard
          const FaultScore s = score(c);
          t.row()
              .cell(algorithmDisplayName(algo))
              .cell(std::uint64_t{k})
              .cell(FaultSpec::parse(load).toString());
          timeCellCi(t, c, ci);
          t.cell(std::string(s.allDispersed ? "yes" : "NO"))
              .cell(std::string(s.anyError ? "err"
                                           : (s.anyCap ? "cap" : "-")))
              .cell(s.maxInjected)
              .cell(std::string(s.allRecovered ? "yes" : "NO"))
              .cell(s.maxRecoveredAt);
        }
      }
    }
  };

  SweepSpec sync;
  sync.name = name;
  sync.graphs = ctx.graphsOr({"er"});
  sync.ks = ctx.ksOr({24});
  sync.algorithms = {"rooted_sync", "general_sync", "ks_sync"};
  sync.faults = loads;
  sync.seeds = ctx.seedsOr(17);
  sync.limit = 4000;
  addRows(sync, ctx.runner().run(sync));

  SweepSpec async;
  async.name = name;
  async.graphs = sync.graphs;
  async.ks = sync.ks;
  async.algorithms = {"rooted_async", "general_async", "ks_async"};
  async.faults = loads;
  async.seeds = sync.seeds;
  async.limit = 200000;
  addRows(async, ctx.runner().run(async));

  emitTable(ctx, name, "self-stabilization scorecard", t);
}

}  // namespace disp::exp
