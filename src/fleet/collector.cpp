#include "fleet/collector.hpp"

#include <algorithm>
#include <fstream>
#include <map>
#include <set>
#include <utility>

#include "fleet/json.hpp"

namespace disp::fleet {

namespace {

const char* const kTelemetry[] = {
    "ms",         "speedup",   "Mact/s",          "Mmoves/s",
    "load_ms",    "peak_rss_mb", "rss_lb_mb",     "rss_ratio",
    "hardware_threads", "oversubscribed", "lanes",
};

const char* const kCoordinates[] = {
    "sweep", "table", "family", "graph", "file",  "k",
    "l",     "placement", "sched", "algo", "faults", "seed",
    "run_threads",
};

bool isCoordinateColumn(const std::string& column) {
  for (const char* c : kCoordinates) {
    if (column == c) return true;
  }
  return false;
}

struct ParsedRow {
  /// Coordinate columns present in the row, in (key, value) sorted order.
  std::vector<std::pair<std::string, std::string>> coords;
  /// Non-telemetry columns, sorted by key — the fact comparison payload.
  std::vector<std::pair<std::string, std::string>> facts;
  bool isCellRow = false;
};

/// Flattens a JSONL row into coordinate + fact views.  Values are the
/// rendered strings JsonlWriter wrote; non-string values (foreign JSONL)
/// compare by their compact dump.
ParsedRow flatten(const JsonValue& row) {
  ParsedRow out;
  for (const auto& [key, value] : row.members()) {
    const std::string rendered = value.isString() ? value.asString() : value.dump();
    if (key == "table" && rendered == "cell") out.isCellRow = true;
    if (isCoordinateColumn(key)) out.coords.emplace_back(key, rendered);
    if (!isTelemetryColumn(key)) out.facts.emplace_back(key, rendered);
  }
  std::sort(out.coords.begin(), out.coords.end());
  std::sort(out.facts.begin(), out.facts.end());
  return out;
}

std::string joinPairs(const std::vector<std::pair<std::string, std::string>>& kvs) {
  std::string out;
  for (const auto& [k, v] : kvs) {
    if (!out.empty()) out += " ";
    out += k + "=" + v;
  }
  return out;
}

/// Canonical identity: the coordinate columns when the row has any beyond
/// sweep/table; the whole fact payload otherwise (fit/note diagnostics).
std::string identityOf(const ParsedRow& row) {
  bool specific = false;
  for (const auto& [k, v] : row.coords) {
    (void)v;
    if (k != "sweep" && k != "table") specific = true;
  }
  if (specific) return joinPairs(row.coords);
  return joinPairs(row.facts);
}

struct Keeper {
  ParsedRow row;
  std::string where;  // "path:line"
};

}  // namespace

bool isTelemetryColumn(const std::string& column) {
  for (const char* t : kTelemetry) {
    if (column == t) return true;
  }
  return false;
}

MergeResult mergeJsonl(const std::vector<MergeInput>& inputs, DupPolicy policy,
                       const std::string& outPath) {
  MergeResult res;
  std::map<std::string, Keeper> seen;
  std::vector<std::string> kept;  // original line text, input order

  for (const MergeInput& input : inputs) {
    std::ifstream in(input.path);
    if (!in) {
      res.errors.push_back(input.path + ": cannot open");
      continue;
    }
    std::vector<std::string> lines;
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
    for (std::size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].empty()) continue;
      const std::string where = input.path + ":" + std::to_string(i + 1);
      JsonValue row;
      try {
        row = JsonValue::parse(lines[i]);
        if (!row.isObject()) throw std::runtime_error("row is not a JSON object");
      } catch (const std::exception& e) {
        if (input.allowPartialTail && i + 1 == lines.size()) {
          ++res.partialTails;  // SIGKILL mid-write: drop the torn tail
          continue;
        }
        res.errors.push_back(where + ": not JSON (" + e.what() + ")");
        continue;
      }
      ++res.rowsIn;
      ParsedRow parsed = flatten(row);
      const std::string id = identityOf(parsed);
      const auto it = seen.find(id);
      if (it == seen.end()) {
        seen.emplace(id, Keeper{std::move(parsed), where});
        kept.push_back(lines[i]);
        continue;
      }
      // Duplicate identity: facts must agree column for column.
      const auto& a = it->second.row.facts;
      const auto& b = parsed.facts;
      std::string diffCol, valA, valB;
      auto ia = a.begin();
      auto ib = b.begin();
      while (ia != a.end() || ib != b.end()) {
        if (ib == b.end() || (ia != a.end() && ia->first < ib->first)) {
          diffCol = ia->first; valA = ia->second; valB = "(absent)";
          break;
        }
        if (ia == a.end() || ib->first < ia->first) {
          diffCol = ib->first; valA = "(absent)"; valB = ib->second;
          break;
        }
        if (ia->second != ib->second) {
          diffCol = ia->first; valA = ia->second; valB = ib->second;
          break;
        }
        ++ia;
        ++ib;
      }
      if (!diffCol.empty()) {
        res.divergences.push_back(
            {id, diffCol, valA, valB, it->second.where, where});
        continue;
      }
      if (policy == DupPolicy::Error) {
        res.errors.push_back(where + ": duplicate row (also in " +
                             it->second.where + ") — overlapping shards?");
        continue;
      }
      ++res.dupsDropped;
    }
  }

  res.ok = res.errors.empty() && res.divergences.empty();
  if (!res.ok) return res;
  std::ofstream out(outPath, std::ios::trunc);
  if (!out) {
    res.ok = false;
    res.errors.push_back(outPath + ": cannot write");
    return res;
  }
  for (const std::string& l : kept) out << l << "\n";
  out.flush();
  if (!out) {
    res.ok = false;
    res.errors.push_back(outPath + ": write failed");
    return res;
  }
  res.rowsOut = kept.size();
  return res;
}

std::uint64_t countDistinctCellRows(const std::vector<std::string>& paths) {
  std::set<std::string> identities;
  for (const std::string& path : paths) {
    std::ifstream in(path);
    if (!in) continue;
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      try {
        const JsonValue row = JsonValue::parse(line);
        if (!row.isObject()) continue;
        const ParsedRow parsed = flatten(row);
        if (parsed.isCellRow) identities.insert(identityOf(parsed));
      } catch (const std::exception&) {
        continue;  // torn tail of a killed attempt
      }
    }
  }
  return identities.size();
}

}  // namespace disp::fleet
