#pragma once
// Collector — merges shard JSONL outputs and audits duplicates.
//
// Rows are the self-describing dictionaries JsonlWriter emits.  Columns
// split three ways (the same split scripts/compare_bench_baseline.sh
// gates on):
//
//   coordinates — the keys that identify which cell a row describes
//                 (sweep, table, family, graph, file, k, l, placement,
//                 sched, algo, faults, seed, run_threads)
//   telemetry   — wallclock / throughput / memory / host columns that may
//                 legitimately differ between attempts (ms, speedup,
//                 Mact/s, Mmoves/s, load_ms, peak_rss_mb, rss_lb_mb,
//                 rss_ratio, hardware_threads, oversubscribed, lanes)
//   facts       — everything else: deterministic simulation results
//
// Two rows with the same coordinates must agree on every fact column.
// Agreement → the duplicate is dropped (DupPolicy::Dedup — retries and
// cross-shard repeats of shared rows are expected) or reported
// (DupPolicy::Error — scripts/merge_jsonl.sh's historical "overlapping
// shards?" contract).  Disagreement is a *divergence*: the run was not
// deterministic (or a file was corrupted) and the merge fails loudly with
// a cell-level diff either way.
//
// Rows whose only coordinates are sweep/table (fit lines, notes) use their
// entire fact content as identity: they are shard-local diagnostics, never
// cross-attempt comparable beyond exact equality.

#include <cstdint>
#include <string>
#include <vector>

namespace disp::fleet {

enum class DupPolicy { Error, Dedup };

struct MergeInput {
  std::string path;
  /// Attempt files from SIGKILL'd workers may end mid-line; when set, an
  /// unparseable *final* line is dropped (counted) instead of failing.
  bool allowPartialTail = false;
};

struct Divergence {
  std::string identity;  ///< canonical coordinate identity of the cell
  std::string column;    ///< first differing fact column
  std::string valueA, valueB;
  std::string whereA, whereB;  ///< "path:line" provenance
};

struct MergeResult {
  bool ok = false;
  std::uint64_t rowsIn = 0;
  std::uint64_t rowsOut = 0;
  std::uint64_t dupsDropped = 0;
  std::uint64_t partialTails = 0;
  std::vector<Divergence> divergences;
  /// Non-divergence failures (unparseable lines, duplicate-under-Error,
  /// I/O), formatted "path:line: why".
  std::vector<std::string> errors;
};

/// Merges `inputs` in order into `outPath` (written only when the result
/// is ok).  Never throws on data problems — they land in the result.
[[nodiscard]] MergeResult mergeJsonl(const std::vector<MergeInput>& inputs,
                                     DupPolicy policy, const std::string& outPath);

/// Distinct cell identities among {"table": "cell"} rows across `paths` —
/// the resume scan: how many of a shard's cells already have durable rows.
/// Unreadable files and unparseable lines count as zero rows, not errors.
[[nodiscard]] std::uint64_t countDistinctCellRows(const std::vector<std::string>& paths);

/// True iff `column` is telemetry (exempt from the fact comparison).
[[nodiscard]] bool isTelemetryColumn(const std::string& column);

}  // namespace disp::fleet
