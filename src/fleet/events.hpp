#pragma once
// fleet_events.jsonl — the fabric's own observability stream.
//
// Every coordinator action (spawn/exit/retry/stall/poison/resume/merge/…)
// appends one self-describing JSON line carrying a monotonic sequence
// number, so an overnight campaign is diagnosable after the fact and a
// resumed coordinator continues the same file without renumbering.  Schema
// (all values JSON strings, like every JSONL stream in this repo;
// validated by scripts/check_fleet_events.sh):
//
//   {"seq", "t_ms", "event": run_start|resume|spawn|exit|stall|chaos_kill|
//    retry|poison|shard_done|merge|divergence|run_done, ...per-kind fields}
//
// t_ms is wall-clock milliseconds since the *current* coordinator process
// started — telemetry, monotonic within one run; seq is monotonic across
// runs (resume scans the tail of an existing file to continue it).

#include <chrono>
#include <cstdint>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace disp::fleet {

class FleetEventLog {
 public:
  /// Opens `path` in append mode; when the file already has events, the
  /// sequence continues after the highest existing "seq".  Throws on I/O
  /// failure.
  explicit FleetEventLog(const std::string& path);

  /// Appends {"seq", "t_ms", "event": kind, fields...} and flushes (the
  /// stream must survive a SIGKILL'd coordinator just like shard rows do).
  void emit(const std::string& kind,
            std::vector<std::pair<std::string, std::string>> fields);

  [[nodiscard]] std::uint64_t nextSeq() const { return seq_; }

 private:
  std::ofstream out_;
  std::uint64_t seq_ = 0;
  std::chrono::steady_clock::time_point start_;
};

}  // namespace disp::fleet
