#pragma once
// fleet_manifest.json — the durable source of truth for a fleet run.
//
// The coordinator writes the manifest before spawning anything and after
// every state transition (atomically: tmp + rename), so a killed
// coordinator resumes from disk: which sweeps, how many shards, each
// shard's state (pending/running/done/failed), which worker last ran it,
// how many attempts it has burned, and where its attempt outputs live.
// Load rejects corrupted or mismatched manifests loudly — resuming against
// the wrong sweep or shard count would silently interleave incompatible
// rows.

#include <cstdint>
#include <string>
#include <vector>

namespace disp::fleet {

enum class ShardState { Pending, Running, Done, Failed };

[[nodiscard]] const char* shardStateName(ShardState s);
[[nodiscard]] ShardState shardStateFromName(const std::string& name);

struct ShardEntry {
  std::uint32_t index = 0;
  ShardState state = ShardState::Pending;
  /// Attempts started so far (the next attempt is attempts + 1).
  std::uint32_t attempts = 0;
  /// Last assigned worker slot description ("" before the first spawn).
  std::string worker;
  /// One JSONL path per attempt, in attempt order; every attempt's flushed
  /// rows stay durable (a killed attempt's partial file still feeds resume
  /// and merge).
  std::vector<std::string> outputs;
  /// Cells this shard owns per the coordinator's enumeration (0 = unknown).
  std::uint64_t cells = 0;
  /// Distinct completed cells recovered from the attempt outputs.
  std::uint64_t cellsDone = 0;

  /// The JSONL path of the current/latest attempt ("" before any).
  [[nodiscard]] const std::string& output() const;
};

struct Manifest {
  static constexpr std::uint32_t kVersion = 1;

  std::vector<std::string> sweeps;
  /// disp_bench pass-through flags, verbatim (axis overrides etc.); a
  /// resume must present the same list or the cell enumeration differs.
  std::vector<std::string> benchArgs;
  std::string fleetSpec;
  std::uint32_t shardCount = 0;
  std::uint64_t totalCells = 0;
  std::vector<ShardEntry> shards;

  /// Serializes to pretty-printed JSON (trailing newline included).
  [[nodiscard]] std::string toJson() const;
  /// Parses + validates; throws std::runtime_error naming the defect.
  [[nodiscard]] static Manifest fromJson(const std::string& text);

  /// Atomic durable write: PATH.tmp + rename.  Throws on I/O failure.
  void save(const std::string& path) const;
  /// Loads and validates PATH; throws with the path in the message.
  [[nodiscard]] static Manifest load(const std::string& path);
};

}  // namespace disp::fleet
