#include "fleet/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace disp::fleet {

namespace {

[[noreturn]] void parseFail(std::size_t offset, const std::string& why) {
  throw std::runtime_error("JSON parse error at byte " + std::to_string(offset) +
                           ": " + why);
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skipWs() {
    while (pos < text.size() && (text[pos] == ' ' || text[pos] == '\t' ||
                                 text[pos] == '\n' || text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) parseFail(pos, "unexpected end of input");
    return text[pos];
  }

  void expect(char c) {
    if (pos >= text.size() || text[pos] != c) {
      parseFail(pos, std::string("expected '") + c + "'");
    }
    ++pos;
  }

  bool consume(char c) {
    if (pos < text.size() && text[pos] == c) {
      ++pos;
      return true;
    }
    return false;
  }

  bool consumeWord(std::string_view w) {
    if (text.substr(pos, w.size()) == w) {
      pos += w.size();
      return true;
    }
    return false;
  }

  std::string parseString() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) parseFail(pos, "unterminated string");
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        parseFail(pos - 1, "raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) parseFail(pos, "unterminated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) parseFail(pos, "truncated \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
            else parseFail(pos - 1, "bad hex digit in \\u escape");
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not
          // produced by any writer in this repo; reject rather than mangle).
          if (code >= 0xd800 && code <= 0xdfff) {
            parseFail(pos - 6, "surrogate \\u escapes are unsupported");
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xc0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3f));
          } else {
            out += static_cast<char>(0xe0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3f));
            out += static_cast<char>(0x80 | (code & 0x3f));
          }
          break;
        }
        default:
          parseFail(pos - 1, std::string("unknown escape '\\") + e + "'");
      }
    }
  }

  JsonValue parseNumber() {
    const std::size_t start = pos;
    if (consume('-')) {}
    if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
      parseFail(pos, "malformed number");
    }
    while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    if (consume('.')) {
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        parseFail(pos, "malformed number (no digits after '.')");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    if (pos < text.size() && (text[pos] == 'e' || text[pos] == 'E')) {
      ++pos;
      if (pos < text.size() && (text[pos] == '+' || text[pos] == '-')) ++pos;
      if (pos >= text.size() || text[pos] < '0' || text[pos] > '9') {
        parseFail(pos, "malformed number (empty exponent)");
      }
      while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    return JsonValue::number(std::strtod(token.c_str(), nullptr));
  }

  JsonValue parseValue(int depth) {
    if (depth > 64) parseFail(pos, "nesting too deep");
    skipWs();
    const char c = peek();
    if (c == '{') {
      ++pos;
      JsonValue obj = JsonValue::object();
      skipWs();
      if (consume('}')) return obj;
      while (true) {
        skipWs();
        std::string key = parseString();
        skipWs();
        expect(':');
        obj.set(std::move(key), parseValue(depth + 1));
        skipWs();
        if (consume(',')) continue;
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      JsonValue arr = JsonValue::array();
      skipWs();
      if (consume(']')) return arr;
      while (true) {
        arr.push(parseValue(depth + 1));
        skipWs();
        if (consume(',')) continue;
        expect(']');
        return arr;
      }
    }
    if (c == '"') return JsonValue::string(parseString());
    if (consumeWord("true")) return JsonValue::boolean(true);
    if (consumeWord("false")) return JsonValue::boolean(false);
    if (consumeWord("null")) return JsonValue();
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber();
    parseFail(pos, std::string("unexpected character '") + c + "'");
  }
};

void appendNumber(std::string& out, double d) {
  // Integers (the only numbers the fleet writes) serialize exactly.
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(d));
    out += buf;
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", d);
  out += buf;
}

}  // namespace

std::string jsonQuote(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

JsonValue JsonValue::boolean(bool b) {
  JsonValue v;
  v.kind_ = Kind::Bool;
  v.bool_ = b;
  return v;
}

JsonValue JsonValue::number(double d) {
  JsonValue v;
  v.kind_ = Kind::Number;
  v.number_ = d;
  return v;
}

JsonValue JsonValue::string(std::string s) {
  JsonValue v;
  v.kind_ = Kind::String;
  v.string_ = std::move(s);
  return v;
}

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::Array;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::Object;
  return v;
}

bool JsonValue::asBool() const {
  if (kind_ != Kind::Bool) throw std::runtime_error("JSON value is not a bool");
  return bool_;
}

double JsonValue::asNumber() const {
  if (kind_ != Kind::Number) throw std::runtime_error("JSON value is not a number");
  return number_;
}

std::uint64_t JsonValue::asU64() const {
  const double d = asNumber();
  if (d < 0 || d != std::floor(d) || d > 9.007199254740992e15) {
    throw std::runtime_error("JSON number is not an unsigned integer");
  }
  return static_cast<std::uint64_t>(d);
}

const std::string& JsonValue::asString() const {
  if (kind_ != Kind::String) throw std::runtime_error("JSON value is not a string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (kind_ != Kind::Array) throw std::runtime_error("JSON value is not an array");
  return items_;
}

std::vector<JsonValue>& JsonValue::items() {
  if (kind_ != Kind::Array) throw std::runtime_error("JSON value is not an array");
  return items_;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (kind_ != Kind::Object) throw std::runtime_error("JSON value is not an object");
  return members_;
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void JsonValue::set(std::string key, JsonValue value) {
  if (kind_ == Kind::Null) kind_ = Kind::Object;
  if (kind_ != Kind::Object) throw std::runtime_error("JSON value is not an object");
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(value));
}

void JsonValue::push(JsonValue value) {
  if (kind_ == Kind::Null) kind_ = Kind::Array;
  if (kind_ != Kind::Array) throw std::runtime_error("JSON value is not an array");
  items_.push_back(std::move(value));
}

void JsonValue::dumpTo(std::string& out, int indent, int depth) const {
  const auto newline = [&](int level) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * level), ' ');
  };
  switch (kind_) {
    case Kind::Null:
      out += "null";
      return;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      return;
    case Kind::Number:
      appendNumber(out, number_);
      return;
    case Kind::String:
      out += jsonQuote(string_);
      return;
    case Kind::Array: {
      if (items_.empty()) {
        out += "[]";
        return;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        items_[i].dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += ']';
      return;
    }
    case Kind::Object: {
      if (members_.empty()) {
        out += "{}";
        return;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i > 0) out += indent > 0 ? "," : ", ";
        newline(depth + 1);
        out += jsonQuote(members_[i].first);
        out += ": ";
        members_[i].second.dumpTo(out, indent, depth + 1);
      }
      newline(depth);
      out += '}';
      return;
    }
  }
}

std::string JsonValue::dump(int indent) const {
  std::string out;
  dumpTo(out, indent, 0);
  return out;
}

JsonValue JsonValue::parse(std::string_view text) {
  Parser p{text};
  JsonValue v = p.parseValue(0);
  p.skipWs();
  if (p.pos != text.size()) {
    parseFail(p.pos, "trailing content after JSON document");
  }
  return v;
}

}  // namespace disp::fleet
