#pragma once
// Minimal JSON value model for the fleet fabric.
//
// The fleet's durable artifacts — the manifest, the per-shard JSONL rows it
// re-scans on resume, and the merged output — are all JSON the repo itself
// produced, so a small recursive-descent parser with strict errors is the
// whole requirement; no third-party dependency.  Objects preserve insertion
// order (dump() round-trips the repo's own writers byte-for-byte for the
// string-valued rows JsonlWriter emits), numbers round-trip through the
// shortest form that re-parses, and parse errors carry a byte offset so a
// truncated or corrupted manifest fails with a usable diagnostic.

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace disp::fleet {

class JsonValue {
 public:
  enum class Kind { Null, Bool, Number, String, Array, Object };

  JsonValue() = default;
  static JsonValue boolean(bool b);
  static JsonValue number(double d);
  static JsonValue string(std::string s);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::Null; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::Bool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::Number; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::String; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::Array; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::Object; }

  [[nodiscard]] bool asBool() const;
  [[nodiscard]] double asNumber() const;
  /// asNumber() checked to be a non-negative integer that fits uint64.
  [[nodiscard]] std::uint64_t asU64() const;
  [[nodiscard]] const std::string& asString() const;
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  [[nodiscard]] std::vector<JsonValue>& items();
  /// Object members in insertion order.
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>& members() const;

  /// Object lookup; nullptr when absent (or not an object).
  [[nodiscard]] const JsonValue* find(std::string_view key) const;
  /// Object insert-or-replace (keeps first-insertion position on replace).
  void set(std::string key, JsonValue value);
  void push(JsonValue value);

  /// Compact single-line serialization (no trailing newline).  `indent > 0`
  /// pretty-prints with that many spaces per level — the manifest form.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parses exactly one JSON document (trailing non-whitespace is an
  /// error).  Throws std::runtime_error with a byte offset on malformed
  /// input.
  [[nodiscard]] static JsonValue parse(std::string_view text);

 private:
  Kind kind_ = Kind::Null;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;

  void dumpTo(std::string& out, int indent, int depth) const;
};

/// Escapes `s` as a JSON string literal including the quotes.
[[nodiscard]] std::string jsonQuote(std::string_view s);

}  // namespace disp::fleet
