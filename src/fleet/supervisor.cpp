#include "fleet/supervisor.hpp"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <ostream>
#include <stdexcept>
#include <thread>

#include "exp/bench_registry.hpp"
#include "fleet/collector.hpp"
#include "fleet/events.hpp"
#include "fleet/manifest.hpp"
#include "fleet/transport.hpp"

namespace disp::fleet {

namespace fs = std::filesystem;
using Clock = std::chrono::steady_clock;

std::string shardAttemptName(std::uint32_t index, std::uint32_t count,
                             std::uint32_t attempt, const char* ext) {
  return "shard_" + std::to_string(index) + "of" + std::to_string(count) +
         ".attempt" + std::to_string(attempt) + "." + ext;
}

namespace {

struct RunningWorker {
  bool active = false;
  std::uint32_t shard = 0;
  std::uint32_t attempt = 0;
  std::uint64_t handle = 0;
  std::string output;
  std::uintmax_t lastSize = 0;
  Clock::time_point lastProgress{};
  bool stalled = false;
};

std::uintmax_t fileSize(const std::string& path) {
  std::error_code ec;
  const std::uintmax_t size = fs::file_size(path, ec);
  return ec ? 0 : size;
}

std::uint64_t countLines(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::uint64_t rows = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++rows;
  }
  return rows;
}

std::string joinList(const std::vector<std::string>& parts) {
  std::string out;
  for (const std::string& p : parts) {
    if (!out.empty()) out += ' ';
    out += p;
  }
  return out;
}

class Coordinator {
 public:
  explicit Coordinator(const FleetOptions& opt)
      : opt_(opt),
        transport_(makeTransport(opt.fleetSpec)),
        manifestPath_((fs::path(opt.dir) / kManifestFile).string()),
        events_((fs::path(opt.dir) / kEventsFile).string()) {}

  int run() {
    prepare();
    events_.emit("run_start", {{"sweeps", joinList(manifest_.sweeps)},
                               {"fleet", transport_->describe()},
                               {"shards", std::to_string(manifest_.shardCount)},
                               {"workers", std::to_string(transport_->slots())},
                               {"cells", std::to_string(manifest_.totalCells)},
                               {"resumed", opt_.resume ? "yes" : "no"}});
    // Recovery happens inside prepare() (it decides the shard states the
    // run starts from), but its per-shard events belong after run_start.
    for (const auto& fields : pendingResumeEvents_) {
      events_.emit("resume", fields);
    }
    pendingResumeEvents_.clear();
    supervise();
    return finish();
  }

 private:
  const FleetOptions& opt_;
  std::unique_ptr<WorkerTransport> transport_;
  std::string manifestPath_;
  FleetEventLog events_;
  Manifest manifest_;
  std::vector<RunningWorker> slots_;
  std::vector<std::uint32_t> failuresThisRun_;
  std::vector<Clock::time_point> eligibleAt_;
  std::vector<std::vector<std::pair<std::string, std::string>>>
      pendingResumeEvents_;
  bool chaosFired_ = false;

  void note(const std::string& line) {
    if (opt_.log != nullptr) *opt_.log << "fleet: " << line << "\n";
  }

  std::string shardPath(std::uint32_t index, std::uint32_t attempt,
                        const char* ext) const {
    return (fs::path(opt_.dir) /
            shardAttemptName(index, manifest_.shardCount, attempt, ext))
        .string();
  }

  // ------------------------------------------------------------- startup
  void prepare() {
    if (opt_.shardCount < 1 || opt_.shardCells.size() != opt_.shardCount) {
      throw std::invalid_argument("fleet options: shardCells must have one entry "
                                  "per shard");
    }
    const bool haveManifest = fs::exists(manifestPath_);
    if (!opt_.resume && haveManifest) {
      throw std::runtime_error(manifestPath_ +
                               " already exists — pass --resume to continue that "
                               "run, or point --dir at a fresh directory");
    }
    if (opt_.resume && !haveManifest) {
      throw std::runtime_error("--resume: no manifest at " + manifestPath_);
    }
    if (opt_.resume) {
      manifest_ = Manifest::load(manifestPath_);
      validateResume();
      recoverShards();
      manifest_.fleetSpec = transport_->describe();  // fleet size may change
    } else {
      manifest_.sweeps = opt_.sweeps;
      manifest_.benchArgs = opt_.benchArgs;
      manifest_.fleetSpec = transport_->describe();
      manifest_.shardCount = opt_.shardCount;
      manifest_.totalCells = opt_.totalCells;
      for (std::uint32_t i = 0; i < opt_.shardCount; ++i) {
        ShardEntry sh;
        sh.index = i;
        sh.cells = opt_.shardCells[i];
        manifest_.shards.push_back(std::move(sh));
      }
    }
    // Zero-cell shards (per-invocation partitions can leave high indices
    // empty) are complete by definition; the worker would only confirm it
    // via the distinct empty-shard exit code.
    for (ShardEntry& sh : manifest_.shards) {
      if (sh.state != ShardState::Done && sh.cells == 0) {
        sh.state = ShardState::Done;
        events_.emit("shard_done", {{"shard", std::to_string(sh.index)},
                                    {"attempts", std::to_string(sh.attempts)},
                                    {"rows", "0"},
                                    {"cells", "0"},
                                    {"empty", "yes"}});
      }
    }
    manifest_.save(manifestPath_);
    slots_.assign(transport_->slots(), RunningWorker{});
    failuresThisRun_.assign(manifest_.shardCount, 0);
    eligibleAt_.assign(manifest_.shardCount, Clock::now());
  }

  void validateResume() const {
    const auto fail = [](const std::string& what) {
      throw std::runtime_error("--resume mismatch: " + what +
                               " differs from the manifest — resuming would "
                               "interleave incompatible rows");
    };
    if (manifest_.sweeps != opt_.sweeps) fail("sweep list");
    if (manifest_.benchArgs != opt_.benchArgs) fail("bench arguments");
    if (manifest_.shardCount != opt_.shardCount) fail("shard count");
    if (manifest_.totalCells != opt_.totalCells) fail("total cell count");
    for (std::uint32_t i = 0; i < opt_.shardCount; ++i) {
      if (manifest_.shards[i].cells != opt_.shardCells[i]) {
        fail("shard " + std::to_string(i) + " cell count");
      }
    }
  }

  /// Resume recovery: every shard that is not Done goes back to Pending —
  /// unless its attempt files already hold a durable row for every owned
  /// cell (the per-row flush makes cells durable, so a worker killed after
  /// its last row needs no relaunch).
  void recoverShards() {
    for (ShardEntry& sh : manifest_.shards) {
      if (sh.state == ShardState::Done) continue;
      std::vector<std::string> outputs;
      for (const std::string& o : sh.outputs) {
        outputs.push_back((fs::path(opt_.dir) / o).string());
      }
      sh.cellsDone = countDistinctCellRows(outputs);
      const bool complete = sh.cells > 0 && sh.cellsDone >= sh.cells;
      pendingResumeEvents_.push_back(
          {{"shard", std::to_string(sh.index)},
           {"state", shardStateName(sh.state)},
           {"cells_done", std::to_string(sh.cellsDone)},
           {"cells", std::to_string(sh.cells)},
           {"complete", complete ? "yes" : "no"}});
      sh.state = complete ? ShardState::Done : ShardState::Pending;
      if (complete) {
        note("shard " + std::to_string(sh.index) +
             " already complete on disk (" + std::to_string(sh.cellsDone) +
             " cells) — not relaunching");
      }
    }
  }

  // ---------------------------------------------------------- scheduling
  bool anyPending() const {
    return std::any_of(manifest_.shards.begin(), manifest_.shards.end(),
                       [](const ShardEntry& sh) {
                         return sh.state == ShardState::Pending;
                       });
  }

  bool anyRunning() const {
    return std::any_of(slots_.begin(), slots_.end(),
                       [](const RunningWorker& w) { return w.active; });
  }

  void spawnEligible() {
    for (std::uint32_t slot = 0; slot < slots_.size(); ++slot) {
      if (slots_[slot].active) continue;
      // Lowest pending shard whose backoff deadline has passed.
      ShardEntry* next = nullptr;
      for (ShardEntry& sh : manifest_.shards) {
        if (sh.state == ShardState::Pending && Clock::now() >= eligibleAt_[sh.index]) {
          next = &sh;
          break;
        }
      }
      if (next == nullptr) return;
      launch(*next, slot);
    }
  }

  void launch(ShardEntry& sh, std::uint32_t slot) {
    sh.attempts += 1;
    sh.state = ShardState::Running;
    sh.worker = transport_->slotName(slot);
    const std::string outName =
        shardAttemptName(sh.index, manifest_.shardCount, sh.attempts, "jsonl");
    sh.outputs.push_back(outName);
    manifest_.save(manifestPath_);  // durable before the side effect

    std::vector<std::string> argv;
    argv.push_back(opt_.benchBinary);
    for (const std::string& s : manifest_.sweeps) argv.push_back(s);
    argv.push_back("--shard=" + std::to_string(sh.index) + "/" +
                   std::to_string(manifest_.shardCount));
    argv.push_back("--jsonl=" + (fs::path(opt_.dir) / outName).string());
    argv.push_back("--stream-cells");
    for (const std::string& a : manifest_.benchArgs) argv.push_back(a);

    RunningWorker w;
    w.shard = sh.index;
    w.attempt = sh.attempts;
    w.output = (fs::path(opt_.dir) / outName).string();
    w.handle = transport_->spawn(
        argv, shardPath(sh.index, sh.attempts, "log"), slot);
    w.active = true;
    w.lastSize = 0;
    w.lastProgress = Clock::now();
    slots_[slot] = w;
    events_.emit("spawn", {{"shard", std::to_string(sh.index)},
                           {"attempt", std::to_string(sh.attempts)},
                           {"pid", std::to_string(w.handle)},
                           {"worker", sh.worker},
                           {"output", outName}});
    note("shard " + std::to_string(sh.index) + " attempt " +
         std::to_string(sh.attempts) + " -> " + sh.worker);
  }

  void checkStallsAndChaos() {
    for (RunningWorker& w : slots_) {
      if (!w.active) continue;
      const std::uintmax_t size = fileSize(w.output);
      if (size != w.lastSize) {
        w.lastSize = size;
        w.lastProgress = Clock::now();
      }
      const double idle =
          std::chrono::duration<double>(Clock::now() - w.lastProgress).count();
      if (!w.stalled && idle > opt_.stallTimeoutSec) {
        events_.emit("stall", {{"shard", std::to_string(w.shard)},
                               {"attempt", std::to_string(w.attempt)},
                               {"idle_ms", std::to_string(
                                               static_cast<long long>(idle * 1000))}});
        note("shard " + std::to_string(w.shard) + " stalled (no JSONL growth for " +
             std::to_string(static_cast<long long>(idle)) + "s) — killing");
        w.stalled = true;
        transport_->terminate(w.handle);
      }
      if (!chaosFired_ && opt_.chaosKillRows > 0 &&
          countLines(w.output) >= opt_.chaosKillRows) {
        chaosFired_ = true;
        events_.emit("chaos_kill", {{"shard", std::to_string(w.shard)},
                                    {"attempt", std::to_string(w.attempt)},
                                    {"rows", std::to_string(opt_.chaosKillRows)}});
        note("chaos: SIGKILL shard " + std::to_string(w.shard) + " attempt " +
             std::to_string(w.attempt));
        transport_->terminate(w.handle);
      }
    }
  }

  void reapExits() {
    for (RunningWorker& w : slots_) {
      if (!w.active) continue;
      const WorkerStatus st = transport_->poll(w.handle);
      if (st.running) continue;
      w.active = false;
      ShardEntry& sh = manifest_.shards[w.shard];
      events_.emit("exit", {{"shard", std::to_string(w.shard)},
                            {"attempt", std::to_string(w.attempt)},
                            {"pid", std::to_string(w.handle)},
                            {"code", std::to_string(st.exitCode)},
                            {"signal", st.signal == 0 ? "-" : std::to_string(st.signal)}});
      const bool emptyShard = st.signal == 0 && st.exitCode == exp::kEmptyShardExitCode;
      if (st.signal == 0 && (st.exitCode == 0 || emptyShard)) {
        sh.state = ShardState::Done;
        std::vector<std::string> outputs;
        for (const std::string& o : sh.outputs) {
          outputs.push_back((fs::path(opt_.dir) / o).string());
        }
        sh.cellsDone = countDistinctCellRows(outputs);
        events_.emit("shard_done",
                     {{"shard", std::to_string(w.shard)},
                      {"attempts", std::to_string(sh.attempts)},
                      {"rows", std::to_string(countLines(w.output))},
                      {"cells", std::to_string(sh.cellsDone)},
                      {"empty", emptyShard ? "yes" : "no"}});
        note("shard " + std::to_string(w.shard) + " done (" +
             std::to_string(sh.cellsDone) + "/" + std::to_string(sh.cells) +
             " cells)");
      } else {
        failuresThisRun_[w.shard] += 1;
        if (failuresThisRun_[w.shard] >= opt_.maxAttempts) {
          sh.state = ShardState::Failed;
          events_.emit("poison", {{"shard", std::to_string(w.shard)},
                                  {"attempts", std::to_string(sh.attempts)}});
          note("shard " + std::to_string(w.shard) + " poisoned after " +
               std::to_string(failuresThisRun_[w.shard]) + " failed attempts");
        } else {
          const double delay =
              std::min(60.0, opt_.backoffBaseSec *
                                 double(1ULL << (failuresThisRun_[w.shard] - 1)));
          eligibleAt_[w.shard] =
              Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                 std::chrono::duration<double>(delay));
          sh.state = ShardState::Pending;
          events_.emit("retry",
                       {{"shard", std::to_string(w.shard)},
                        {"attempt", std::to_string(sh.attempts + 1)},
                        {"delay_ms",
                         std::to_string(static_cast<long long>(delay * 1000))}});
          note("shard " + std::to_string(w.shard) + " failed (attempt " +
               std::to_string(sh.attempts) + ") — retrying in " +
               std::to_string(delay) + "s");
        }
      }
      manifest_.save(manifestPath_);
    }
  }

  void supervise() {
    while (anyPending() || anyRunning()) {
      spawnEligible();
      checkStallsAndChaos();
      reapExits();
      if (anyPending() || anyRunning()) {
        std::this_thread::sleep_for(
            std::chrono::duration<double>(opt_.pollIntervalSec));
      }
    }
  }

  // -------------------------------------------------------- collect/audit
  int finish() {
    std::vector<std::string> failed;
    for (const ShardEntry& sh : manifest_.shards) {
      if (sh.state == ShardState::Failed) failed.push_back(std::to_string(sh.index));
    }
    if (!failed.empty()) {
      events_.emit("run_done", {{"ok", "no"},
                                {"failed_shards", joinList(failed)}});
      note("FAILED: poisoned shards " + joinList(failed) +
           " — fix the cause and rerun with --resume (completed shards keep "
           "their rows)");
      return 1;
    }

    std::vector<MergeInput> inputs;
    for (const ShardEntry& sh : manifest_.shards) {
      for (const std::string& o : sh.outputs) {
        // Attempt files of killed workers may end mid-line (tolerated) or —
        // when the worker died before its first flush — not exist at all
        // (zero durable rows, nothing to merge).
        const std::string path = (fs::path(opt_.dir) / o).string();
        if (fs::exists(path)) inputs.push_back({path, true});
      }
    }
    const std::string mergedPath = (fs::path(opt_.dir) / kMergedFile).string();
    const MergeResult merged = mergeJsonl(inputs, DupPolicy::Dedup, mergedPath);
    if (!merged.divergences.empty()) {
      events_.emit("divergence",
                   {{"cells", std::to_string(merged.divergences.size())}});
      for (const Divergence& d : merged.divergences) {
        note("DIVERGENCE [" + d.identity + "] column '" + d.column + "': " +
             d.whereA + " says '" + d.valueA + "', " + d.whereB + " says '" +
             d.valueB + "'");
      }
    }
    for (const std::string& e : merged.errors) note("merge error: " + e);
    if (!merged.ok) {
      events_.emit("run_done", {{"ok", "no"}, {"failed_shards", ""}});
      note("FAILED: merge/audit rejected the shard outputs");
      return 1;
    }
    events_.emit("merge", {{"files", std::to_string(inputs.size())},
                           {"rows_in", std::to_string(merged.rowsIn)},
                           {"rows_out", std::to_string(merged.rowsOut)},
                           {"dups", std::to_string(merged.dupsDropped)},
                           {"partial_tails", std::to_string(merged.partialTails)},
                           {"output", kMergedFile}});
    events_.emit("run_done", {{"ok", "yes"}, {"failed_shards", ""}});
    note("done: " + std::to_string(merged.rowsOut) + " rows -> " + mergedPath);
    return 0;
  }
};

}  // namespace

int runFleet(const FleetOptions& options) {
  fs::create_directories(options.dir);
  Coordinator coordinator(options);
  return coordinator.run();
}

}  // namespace disp::fleet
