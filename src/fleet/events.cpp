#include "fleet/events.hpp"

#include <stdexcept>

#include "fleet/json.hpp"

namespace disp::fleet {

namespace {

/// Highest "seq" in an existing events file (0 when absent/empty).  A
/// partial trailing line — the coordinator can be SIGKILL'd mid-write —
/// parses as garbage and is simply skipped; seq gaps are harmless, only
/// monotonicity matters.
std::uint64_t lastSeq(const std::string& path) {
  std::ifstream in(path);
  if (!in) return 0;
  std::uint64_t last = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    try {
      const JsonValue rec = JsonValue::parse(line);
      if (const JsonValue* seq = rec.find("seq")) {
        const std::string& s = seq->asString();
        if (!s.empty() && s.find_first_not_of("0123456789") == std::string::npos) {
          last = std::max<std::uint64_t>(last, std::stoull(s));
        }
      }
    } catch (const std::exception&) {
      continue;
    }
  }
  return last;
}

}  // namespace

FleetEventLog::FleetEventLog(const std::string& path)
    : seq_(lastSeq(path) + 1), start_(std::chrono::steady_clock::now()) {
  out_.open(path, std::ios::app);
  if (!out_) throw std::runtime_error("cannot open fleet events file: " + path);
}

void FleetEventLog::emit(const std::string& kind,
                         std::vector<std::pair<std::string, std::string>> fields) {
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      std::chrono::steady_clock::now() - start_)
                      .count();
  std::string line = "{";
  line += jsonQuote("seq") + ": " + jsonQuote(std::to_string(seq_++));
  line += ", " + jsonQuote("t_ms") + ": " + jsonQuote(std::to_string(ms));
  line += ", " + jsonQuote("event") + ": " + jsonQuote(kind);
  for (const auto& [key, value] : fields) {
    line += ", " + jsonQuote(key) + ": " + jsonQuote(value);
  }
  line += "}";
  out_ << line << "\n";
  out_.flush();
  if (!out_) throw std::runtime_error("writing fleet events failed");
}

}  // namespace disp::fleet
