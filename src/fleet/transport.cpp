#include "fleet/transport.hpp"

#include <fcntl.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

namespace disp::fleet {

// --------------------------------------------------------------- local

LocalTransport::LocalTransport(std::uint32_t slots) : slots_(slots) {
  if (slots_ < 1 || slots_ > 1024) {
    throw std::invalid_argument("local fleet wants 1..1024 slots, got " +
                                std::to_string(slots_));
  }
}

std::string LocalTransport::describe() const {
  return "local:" + std::to_string(slots_);
}

std::string LocalTransport::slotName(std::uint32_t slot) const {
  return "local:" + std::to_string(slot);
}

std::uint64_t LocalTransport::spawn(const std::vector<std::string>& argv,
                                    const std::string& logPath,
                                    std::uint32_t slot) {
  if (argv.empty()) throw std::runtime_error("spawn with empty argv");
  if (slot >= slots_) throw std::runtime_error("spawn on out-of-range slot");
  // Open the log in the parent so a failure is reported as an exception,
  // not a silent child death.
  const int logFd = ::open(logPath.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (logFd < 0) {
    throw std::runtime_error("cannot open worker log " + logPath + ": " +
                             std::strerror(errno));
  }
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const std::string& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    const int err = errno;
    ::close(logFd);
    throw std::runtime_error(std::string("fork failed: ") + std::strerror(err));
  }
  if (pid == 0) {
    // Child: markdown/diagnostics to the attempt log; facts go to the
    // --jsonl path the coordinator put in argv.
    ::dup2(logFd, STDOUT_FILENO);
    ::dup2(logFd, STDERR_FILENO);
    ::close(logFd);
    ::execvp(cargv[0], cargv.data());
    // exec failed: 127 is the shell convention the supervisor reports as-is.
    ::_exit(127);
  }
  ::close(logFd);
  return static_cast<std::uint64_t>(pid);
}

WorkerStatus LocalTransport::poll(std::uint64_t handle) {
  int status = 0;
  const pid_t pid = static_cast<pid_t>(handle);
  const pid_t r = ::waitpid(pid, &status, WNOHANG);
  WorkerStatus out;
  if (r == 0) return out;  // still running
  if (r < 0) {
    throw std::runtime_error("waitpid(" + std::to_string(pid) + ") failed: " +
                             std::strerror(errno));
  }
  out.running = false;
  if (WIFEXITED(status)) {
    out.exitCode = WEXITSTATUS(status);
    out.signal = 0;
  } else if (WIFSIGNALED(status)) {
    out.exitCode = -1;
    out.signal = WTERMSIG(status);
  }
  return out;
}

void LocalTransport::terminate(std::uint64_t handle) {
  (void)::kill(static_cast<pid_t>(handle), SIGKILL);
}

// ----------------------------------------------------------------- ssh

SshTransport::SshTransport(std::vector<std::string> hosts)
    : hosts_(std::move(hosts)) {
  if (hosts_.empty()) throw std::invalid_argument("ssh fleet wants at least one host");
  for (const std::string& h : hosts_) {
    if (h.empty()) throw std::invalid_argument("ssh fleet has an empty host name");
  }
}

std::string SshTransport::describe() const {
  std::string out = "ssh:";
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    if (i > 0) out += ',';
    out += hosts_[i];
  }
  return out;
}

std::uint32_t SshTransport::slots() const {
  return static_cast<std::uint32_t>(hosts_.size());
}

std::string SshTransport::slotName(std::uint32_t slot) const {
  return "ssh:" + hosts_.at(slot);
}

std::uint64_t SshTransport::spawn(const std::vector<std::string>&,
                                  const std::string&, std::uint32_t slot) {
  throw std::runtime_error(
      "ssh transport is a stub (host " + hosts_.at(slot) +
      "): spec parsing and slot accounting only — run with --fleet=local:P");
}

WorkerStatus SshTransport::poll(std::uint64_t) {
  throw std::runtime_error("ssh transport is a stub: nothing to poll");
}

void SshTransport::terminate(std::uint64_t) {}

// -------------------------------------------------------------- factory

std::unique_ptr<WorkerTransport> makeTransport(const std::string& spec) {
  const auto colon = spec.find(':');
  const std::string kind = spec.substr(0, colon);
  const std::string rest =
      colon == std::string::npos ? std::string() : spec.substr(colon + 1);
  if (kind == "local") {
    if (rest.empty() || rest.find_first_not_of("0123456789") != std::string::npos) {
      throw std::invalid_argument("bad fleet spec '" + spec +
                                  "': local wants a worker count (local:4)");
    }
    const unsigned long long p = std::stoull(rest);
    if (p < 1 || p > 1024) {
      throw std::invalid_argument("bad fleet spec '" + spec +
                                  "': worker count must be in [1, 1024]");
    }
    return std::make_unique<LocalTransport>(static_cast<std::uint32_t>(p));
  }
  if (kind == "ssh") {
    std::vector<std::string> hosts;
    std::string::size_type from = 0;
    while (from <= rest.size()) {
      const auto comma = rest.find(',', from);
      const auto to = comma == std::string::npos ? rest.size() : comma;
      hosts.push_back(rest.substr(from, to - from));
      if (comma == std::string::npos) break;
      from = comma + 1;
    }
    if (rest.empty()) hosts.clear();
    try {
      return std::make_unique<SshTransport>(std::move(hosts));
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("bad fleet spec '" + spec + "': " + e.what());
    }
  }
  throw std::invalid_argument("bad fleet spec '" + spec +
                              "': known transports are local:P and ssh:host1,host2");
}

}  // namespace disp::fleet
