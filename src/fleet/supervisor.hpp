#pragma once
// The fleet coordinator: manifest-driven shard dispatch over a
// WorkerTransport, heartbeat-by-progress supervision, bounded retry with
// exponential backoff, restart-resume from flushed JSONL rows, and the
// final collect + divergence audit (DESIGN.md §13).
//
// Role split (the proposer/acceptor/learner shape, minus consensus —
// workers are fail-stop and the manifest is the single durable authority):
//
//   coordinator  owns the manifest and the worker lifecycle
//   workers      disp_bench --shard=I/N --jsonl=… --stream-cells …
//   collector    merges attempt files, audits duplicate cells
//
// Every state transition is durable before it is acted on: the manifest is
// saved (atomic rename) before each spawn and after each exit, so a
// SIGKILL'd coordinator resumes exactly — shards with all cells already
// flushed are marked done without relaunch, everything else restarts with
// a fresh attempt whose file is separate (attempt outputs are never
// overwritten; the collector dedups equal rows and fails on divergent
// ones).

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace disp::fleet {

struct FleetOptions {
  std::vector<std::string> sweeps;
  /// disp_bench pass-through flags, verbatim (recorded in the manifest;
  /// a resume must present the same list).
  std::vector<std::string> benchArgs;
  std::string fleetSpec = "local:2";
  std::string benchBinary = "disp_bench";
  /// Run directory: manifest, events, shard attempt files, merged output.
  std::string dir = ".";
  std::uint32_t shardCount = 0;
  /// Cells owned by each shard per the coordinator's --list-cells
  /// enumeration (size == shardCount).
  std::vector<std::uint64_t> shardCells;
  std::uint64_t totalCells = 0;
  /// Failed attempts per shard per coordinator run before the poison
  /// verdict (a later --resume grants a fresh budget).
  std::uint32_t maxAttempts = 3;
  /// Heartbeat-by-progress: a worker whose attempt JSONL has not grown for
  /// this long is presumed hung and SIGKILL'd (counts as a failed attempt).
  double stallTimeoutSec = 300.0;
  /// Retry backoff: base * 2^(failures-1) seconds, capped at 60s.
  double backoffBaseSec = 0.5;
  double pollIntervalSec = 0.05;
  bool resume = false;
  /// Fault-injection hook for tests/CI: SIGKILL the first running worker
  /// once its attempt file holds this many rows (0 = off).  Fires once per
  /// coordinator run.
  std::uint64_t chaosKillRows = 0;
  /// Progress narration (nullptr = quiet).
  std::ostream* log = nullptr;
};

/// Runs the campaign to completion (or poison/divergence verdict).
/// Returns 0 on success — all shards done, merged output written and
/// audit-clean — and 1 on any terminal failure.  Throws only on
/// programming/setup errors (bad options, unwritable dir).
[[nodiscard]] int runFleet(const FleetOptions& options);

/// Shard attempt artifact names, shared with tests:
/// "shard_<I>of<N>.attempt<A>.jsonl" / ".log".
[[nodiscard]] std::string shardAttemptName(std::uint32_t index, std::uint32_t count,
                                           std::uint32_t attempt, const char* ext);

inline constexpr const char* kManifestFile = "fleet_manifest.json";
inline constexpr const char* kEventsFile = "fleet_events.jsonl";
inline constexpr const char* kMergedFile = "merged.jsonl";

}  // namespace disp::fleet
