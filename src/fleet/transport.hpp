#pragma once
// WorkerTransport — how the coordinator starts and watches worker
// processes, abstracted so shard dispatch is transport-agnostic.
//
// Fleet spec grammar (parse errors throw std::invalid_argument):
//
//   local:P            P-slot pool of local disp_bench processes
//                      (fork/exec; stdout+stderr to a per-attempt log)
//   ssh:host1,host2    one slot per host over ssh — parsed and slot-
//                      accounted today, spawn() throws "stub": the
//                      coordinator/manifest/collector machinery is
//                      transport-agnostic, and this is the seam a real
//                      remote transport plugs into
//
// The fail-stop model is deliberate: a worker either exits (code/signal
// observable via poll) or makes progress observable through its shard's
// JSONL growth; the supervisor never inspects worker internals.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace disp::fleet {

/// One observed worker process.
struct WorkerStatus {
  bool running = true;
  /// Valid when !running: exit code, or -1 if signaled.
  int exitCode = -1;
  /// Valid when !running: terminating signal, or 0 for a clean exit.
  int signal = 0;
};

class WorkerTransport {
 public:
  virtual ~WorkerTransport() = default;

  /// Human-readable transport description ("local:4", "ssh:a,b").
  [[nodiscard]] virtual std::string describe() const = 0;
  /// Concurrent worker slots this transport offers.
  [[nodiscard]] virtual std::uint32_t slots() const = 0;
  /// Short per-slot label recorded in the manifest ("local:2", "ssh:b").
  [[nodiscard]] virtual std::string slotName(std::uint32_t slot) const = 0;

  /// Launches `argv` (argv[0] = binary) on `slot`, redirecting stdout and
  /// stderr to `logPath` (append).  Returns an opaque worker handle.
  /// Throws std::runtime_error on launch failure.
  [[nodiscard]] virtual std::uint64_t spawn(const std::vector<std::string>& argv,
                                            const std::string& logPath,
                                            std::uint32_t slot) = 0;

  /// Non-blocking status check for a handle returned by spawn().
  [[nodiscard]] virtual WorkerStatus poll(std::uint64_t handle) = 0;

  /// Hard-kills the worker (SIGKILL semantics — the crash-failure model);
  /// the exit must still be observed via poll() to release the handle.
  virtual void terminate(std::uint64_t handle) = 0;
};

/// Local process pool: handles are PIDs, poll is waitpid(WNOHANG).
class LocalTransport final : public WorkerTransport {
 public:
  explicit LocalTransport(std::uint32_t slots);
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint32_t slots() const override { return slots_; }
  [[nodiscard]] std::string slotName(std::uint32_t slot) const override;
  [[nodiscard]] std::uint64_t spawn(const std::vector<std::string>& argv,
                                    const std::string& logPath,
                                    std::uint32_t slot) override;
  [[nodiscard]] WorkerStatus poll(std::uint64_t handle) override;
  void terminate(std::uint64_t handle) override;

 private:
  std::uint32_t slots_;
};

/// Remote transport stub: fleet-spec parsing and slot accounting only.
class SshTransport final : public WorkerTransport {
 public:
  explicit SshTransport(std::vector<std::string> hosts);
  [[nodiscard]] std::string describe() const override;
  [[nodiscard]] std::uint32_t slots() const override;
  [[nodiscard]] std::string slotName(std::uint32_t slot) const override;
  [[nodiscard]] std::uint64_t spawn(const std::vector<std::string>& argv,
                                    const std::string& logPath,
                                    std::uint32_t slot) override;
  [[nodiscard]] WorkerStatus poll(std::uint64_t handle) override;
  void terminate(std::uint64_t handle) override;

  [[nodiscard]] const std::vector<std::string>& hosts() const { return hosts_; }

 private:
  std::vector<std::string> hosts_;
};

/// Parses a fleet spec ("local:4", "ssh:a,b") into a transport.
[[nodiscard]] std::unique_ptr<WorkerTransport> makeTransport(const std::string& spec);

}  // namespace disp::fleet
