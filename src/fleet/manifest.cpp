#include "fleet/manifest.hpp"

#include <filesystem>
#include <fstream>
#include <iterator>
#include <stdexcept>

#include "fleet/json.hpp"

namespace disp::fleet {

const char* shardStateName(ShardState s) {
  switch (s) {
    case ShardState::Pending: return "pending";
    case ShardState::Running: return "running";
    case ShardState::Done: return "done";
    case ShardState::Failed: return "failed";
  }
  throw std::logic_error("unreachable shard state");
}

ShardState shardStateFromName(const std::string& name) {
  if (name == "pending") return ShardState::Pending;
  if (name == "running") return ShardState::Running;
  if (name == "done") return ShardState::Done;
  if (name == "failed") return ShardState::Failed;
  throw std::runtime_error("unknown shard state '" + name + "'");
}

const std::string& ShardEntry::output() const {
  static const std::string kEmpty;
  return outputs.empty() ? kEmpty : outputs.back();
}

namespace {

[[noreturn]] void badManifest(const std::string& why) {
  throw std::runtime_error("bad fleet manifest: " + why);
}

const JsonValue& field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr) badManifest(std::string("missing field '") + key + "'");
  return *v;
}

std::vector<std::string> stringList(const JsonValue& v, const char* key) {
  std::vector<std::string> out;
  for (const JsonValue& item : v.items()) out.push_back(item.asString());
  if (out.empty() && std::string(key) == "sweeps") badManifest("empty sweep list");
  return out;
}

}  // namespace

std::string Manifest::toJson() const {
  JsonValue root = JsonValue::object();
  root.set("version", JsonValue::number(kVersion));
  JsonValue sweepArr = JsonValue::array();
  for (const std::string& s : sweeps) sweepArr.push(JsonValue::string(s));
  root.set("sweeps", std::move(sweepArr));
  JsonValue argArr = JsonValue::array();
  for (const std::string& a : benchArgs) argArr.push(JsonValue::string(a));
  root.set("bench_args", std::move(argArr));
  root.set("fleet", JsonValue::string(fleetSpec));
  root.set("shard_count", JsonValue::number(shardCount));
  root.set("total_cells", JsonValue::number(static_cast<double>(totalCells)));
  JsonValue shardArr = JsonValue::array();
  for (const ShardEntry& sh : shards) {
    JsonValue e = JsonValue::object();
    e.set("index", JsonValue::number(sh.index));
    e.set("state", JsonValue::string(shardStateName(sh.state)));
    e.set("attempts", JsonValue::number(sh.attempts));
    e.set("worker", JsonValue::string(sh.worker));
    JsonValue outs = JsonValue::array();
    for (const std::string& o : sh.outputs) outs.push(JsonValue::string(o));
    e.set("outputs", std::move(outs));
    e.set("cells", JsonValue::number(static_cast<double>(sh.cells)));
    e.set("cells_done", JsonValue::number(static_cast<double>(sh.cellsDone)));
    shardArr.push(std::move(e));
  }
  root.set("shards", std::move(shardArr));
  return root.dump(2) + "\n";
}

Manifest Manifest::fromJson(const std::string& text) {
  const JsonValue root = JsonValue::parse(text);
  if (!root.isObject()) badManifest("top level is not an object");
  const std::uint64_t version = field(root, "version").asU64();
  if (version != kVersion) {
    badManifest("unsupported version " + std::to_string(version) +
                " (this build understands " + std::to_string(kVersion) + ")");
  }
  Manifest m;
  m.sweeps = stringList(field(root, "sweeps"), "sweeps");
  m.benchArgs = stringList(field(root, "bench_args"), "bench_args");
  m.fleetSpec = field(root, "fleet").asString();
  m.shardCount = static_cast<std::uint32_t>(field(root, "shard_count").asU64());
  m.totalCells = field(root, "total_cells").asU64();
  if (m.shardCount < 1 || m.shardCount > 4096) {
    badManifest("shard_count " + std::to_string(m.shardCount) +
                " out of range [1, 4096]");
  }
  const std::vector<JsonValue>& entries = field(root, "shards").items();
  if (entries.size() != m.shardCount) {
    badManifest("shards array has " + std::to_string(entries.size()) +
                " entries, shard_count says " + std::to_string(m.shardCount));
  }
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const JsonValue& e = entries[i];
    ShardEntry sh;
    sh.index = static_cast<std::uint32_t>(field(e, "index").asU64());
    if (sh.index != i) {
      badManifest("shard entry " + std::to_string(i) + " has index " +
                  std::to_string(sh.index));
    }
    sh.state = shardStateFromName(field(e, "state").asString());
    sh.attempts = static_cast<std::uint32_t>(field(e, "attempts").asU64());
    sh.worker = field(e, "worker").asString();
    for (const JsonValue& o : field(e, "outputs").items()) {
      sh.outputs.push_back(o.asString());
    }
    if (sh.outputs.size() > sh.attempts) {
      badManifest("shard " + std::to_string(i) + " lists more outputs than attempts");
    }
    sh.cells = field(e, "cells").asU64();
    sh.cellsDone = field(e, "cells_done").asU64();
    m.shards.push_back(std::move(sh));
  }
  return m;
}

void Manifest::save(const std::string& path) const {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot write fleet manifest: " + tmp);
    out << toJson();
    out.flush();
    if (!out) throw std::runtime_error("writing fleet manifest failed: " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    throw std::runtime_error("cannot rename " + tmp + " -> " + path + ": " +
                             ec.message());
  }
}

Manifest Manifest::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot read fleet manifest: " + path);
  std::string text((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  try {
    return fromJson(text);
  } catch (const std::exception& e) {
    throw std::runtime_error(path + ": " + e.what());
  }
}

}  // namespace disp::fleet
